// Package faultinject is the deterministic fault-injection layer of the
// EcoCapsule stack. A seeded Plan declares the failure regime — frame loss
// and bit corruption on the acoustic link, capsule brown-outs and mutes,
// dead reader stations, stuck sensors, and dropped monitoring connections —
// and an Injector turns the plan into reproducible per-event decisions.
//
// The consumers (reader, fleet, shmwire, channel) each define a small
// interface at their point of use; the Injector implements all of them, so
// a single plan drives the whole pipeline without forking any hot path.
// Because every draw comes from one seeded source consumed in the
// deterministic order the simulation visits stations and capsules, the same
// plan and seed reproduce the same failures byte for byte.
package faultinject

//ecolint:deterministic

import (
	"fmt"
	"math/rand"
	"sync"

	"ecocapsule/internal/telemetry"
)

// Plan is a declarative, seeded fault scenario. The zero value injects
// nothing; probabilities are in [0, 1].
type Plan struct {
	// Seed drives every random decision the injector makes.
	Seed int64

	// FrameLossProb is the probability that a whole frame (downlink or
	// uplink) is lost in transit — the BER-waterfall regime of Fig. 15
	// where sync is never acquired.
	FrameLossProb float64
	// FrameCorruptProb is the probability that a surviving frame takes a
	// short burst of bit flips (1–4 bits), the CRC-detectable case.
	FrameCorruptProb float64
	// BitFlipBER applies independent per-bit flips at this rate on top of
	// the burst model, for sweeping the waterfall edge directly.
	BitFlipBER float64

	// DeadStations lists fleet station indices that are offline for the
	// whole scenario (a reader fell off the wall).
	DeadStations []int

	// MutedCapsules lists capsule handles whose uplink never arrives (a
	// failed backscatter switch); the capsule still harvests and decodes.
	MutedCapsules []uint16
	// BrownoutProb is the per-downlink-delivery probability that a capsule
	// browns out mid-inventory and drops back to dormant.
	BrownoutProb float64

	// StuckSensors lists capsule handles whose sensors freeze at their
	// first sampled value (a debonded gauge reporting forever-stale data).
	StuckSensors []uint16

	// ConnDropAfterFrames makes a wrapped monitoring connection fail after
	// this many successful reads (0 = never) — the shmwire reconnect case.
	ConnDropAfterFrames int

	// FadeProb is the per-transmission probability of an acoustic fade (a
	// transient blocker in the propagation path); FadeDepth is the fraction
	// of amplitude removed when a fade hits (1 = total blackout).
	FadeProb  float64
	FadeDepth float64
}

// Validate checks the plan's probabilities and counts.
func (p Plan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"FrameLossProb", p.FrameLossProb},
		{"FrameCorruptProb", p.FrameCorruptProb},
		{"BitFlipBER", p.BitFlipBER},
		{"BrownoutProb", p.BrownoutProb},
		{"FadeProb", p.FadeProb},
		{"FadeDepth", p.FadeDepth},
	} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faultinject: %s = %g outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.ConnDropAfterFrames < 0 {
		return fmt.Errorf("faultinject: ConnDropAfterFrames = %d negative", p.ConnDropAfterFrames)
	}
	for _, s := range p.DeadStations {
		if s < 0 {
			return fmt.Errorf("faultinject: dead station index %d negative", s)
		}
	}
	return nil
}

// Stats counts what the injector actually did — tests assert on these and
// reports annotate degradation with them.
type Stats struct {
	DownlinkDropped   int
	DownlinkCorrupted int
	UplinkDropped     int
	UplinkCorrupted   int
	Brownouts         int
	Fades             int
}

// Injector executes a Plan deterministically. All methods are safe for
// concurrent use; determinism additionally requires the callers to consume
// draws in a deterministic order, which the simulation's fixed
// station/capsule iteration order provides.
type Injector struct {
	mu   sync.Mutex
	plan Plan
	//ecolint:guardedby mu
	rng *rand.Rand
	//ecolint:guardedby mu
	dead map[int]bool
	//ecolint:guardedby mu
	muted map[uint16]bool
	//ecolint:guardedby mu
	stuck map[uint16]bool
	//ecolint:guardedby mu
	stats Stats
}

// New validates the plan and builds its injector.
func New(plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		dead:  make(map[int]bool, len(plan.DeadStations)),
		muted: make(map[uint16]bool, len(plan.MutedCapsules)),
		stuck: make(map[uint16]bool, len(plan.StuckSensors)),
	}
	for _, s := range plan.DeadStations {
		in.dead[s] = true
	}
	for _, h := range plan.MutedCapsules {
		in.muted[h] = true
	}
	for _, h := range plan.StuckSensors {
		in.stuck[h] = true
	}
	return in, nil
}

// MustNew is New for literal plans in tests and examples; it panics on an
// invalid plan.
func MustNew(plan Plan) *Injector {
	in, err := New(plan)
	if err != nil {
		panic(err)
	}
	return in
}

// Plan returns a copy of the injector's plan.
func (in *Injector) Plan() Plan { return in.plan }

// Downlink implements the reader's frame-fault hook for reader→capsule
// frames: it returns the (possibly corrupted) frame and whether it arrived
// at all. The returned slice is a copy; the input is never mutated.
func (in *Injector) Downlink(handle uint16, frame []byte) ([]byte, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	out, delivered, touched := in.frameLocked(frame)
	if !delivered {
		in.stats.DownlinkDropped++
		mInjected.With(kindDownlinkDropped).Inc()
		telemetry.RecordFlight("faultinject", "downlink_dropped",
			fmt.Sprintf("frame to capsule 0x%04x lost in the concrete", handle))
	} else if touched {
		in.stats.DownlinkCorrupted++
		mInjected.With(kindDownlinkCorrupted).Inc()
		telemetry.RecordFlight("faultinject", "downlink_corrupted",
			fmt.Sprintf("frame to capsule 0x%04x took bit flips", handle))
	}
	return out, delivered
}

// Uplink implements the reader's frame-fault hook for capsule→reader
// frames. A muted capsule's uplink is always dropped.
func (in *Injector) Uplink(handle uint16, frame []byte) ([]byte, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.muted[handle] {
		in.stats.UplinkDropped++
		mInjected.With(kindUplinkDropped).Inc()
		telemetry.RecordFlight("faultinject", "uplink_dropped",
			fmt.Sprintf("capsule 0x%04x is muted", handle))
		return nil, false
	}
	out, delivered, touched := in.frameLocked(frame)
	if !delivered {
		in.stats.UplinkDropped++
		mInjected.With(kindUplinkDropped).Inc()
		telemetry.RecordFlight("faultinject", "uplink_dropped",
			fmt.Sprintf("backscatter from capsule 0x%04x never reached the RX", handle))
	} else if touched {
		in.stats.UplinkCorrupted++
		mInjected.With(kindUplinkCorrupted).Inc()
		telemetry.RecordFlight("faultinject", "uplink_corrupted",
			fmt.Sprintf("backscatter from capsule 0x%04x took bit flips", handle))
	}
	return out, delivered
}

// frameLocked applies loss, burst corruption, and BER to one frame.
func (in *Injector) frameLocked(frame []byte) (out []byte, delivered, touched bool) {
	if in.plan.FrameLossProb > 0 && in.rng.Float64() < in.plan.FrameLossProb {
		return nil, false, false
	}
	out = frame
	if in.plan.FrameCorruptProb > 0 && in.rng.Float64() < in.plan.FrameCorruptProb && len(frame) > 0 {
		out = append([]byte(nil), out...)
		flips := 1 + in.rng.Intn(4)
		for i := 0; i < flips; i++ {
			bit := in.rng.Intn(len(out) * 8)
			out[bit/8] ^= 1 << uint(7-bit%8)
		}
		touched = true
	}
	if in.plan.BitFlipBER > 0 && len(frame) > 0 {
		copied := touched
		for i := 0; i < len(out)*8; i++ {
			if in.rng.Float64() < in.plan.BitFlipBER {
				if !copied {
					out = append([]byte(nil), out...)
					copied = true
				}
				out[i/8] ^= 1 << uint(7-i%8)
				touched = true
			}
		}
	}
	return out, true, touched
}

// Brownout implements the reader's capsule-fault hook: drawn once per
// downlink delivery, true means the capsule loses power mid-operation.
func (in *Injector) Brownout(handle uint16) bool {
	if in.plan.BrownoutProb <= 0 {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() < in.plan.BrownoutProb {
		in.stats.Brownouts++
		mInjected.With(kindBrownout).Inc()
		telemetry.RecordFlight("faultinject", "brownout",
			fmt.Sprintf("capsule 0x%04x lost its storage charge mid-operation", handle))
		return true
	}
	return false
}

// Attenuate implements the channel's acoustic-fade hook: one draw per
// transmission, returning the amplitude factor to apply (1 = clean).
func (in *Injector) Attenuate() float64 {
	if in.plan.FadeProb <= 0 {
		return 1
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.rng.Float64() < in.plan.FadeProb {
		in.stats.Fades++
		mInjected.With(kindFade).Inc()
		telemetry.RecordFlight("faultinject", "fade",
			fmt.Sprintf("acoustic fade, amplitude x%.2f", 1-in.plan.FadeDepth))
		return 1 - in.plan.FadeDepth
	}
	return 1
}

// StationDead implements the fleet's station-fault hook.
func (in *Injector) StationDead(station int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dead[station]
}

// SensorStuck reports whether a capsule's sensors are planned to freeze.
func (in *Injector) SensorStuck(handle uint16) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stuck[handle]
}

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}
