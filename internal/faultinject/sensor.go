package faultinject

import (
	"sync"

	"ecocapsule/internal/sensors"
)

// StuckSensor wraps a sensors.Sensor and freezes its output at the first
// sampled reading — the classic stuck-at fault of a debonded strain gauge
// or a corroded humidity cell: the wire protocol stays perfectly healthy
// while the data silently stops tracking reality. Attach it over a
// capsule's real sensor (node.AttachSensor replaces by type) to test that
// trend analysis flags the freeze.
type StuckSensor struct {
	mu    sync.Mutex
	inner sensors.Sensor
	//ecolint:guardedby mu
	frozen *sensors.Reading
}

// Freeze wraps s with stuck-at-first-value behaviour.
func Freeze(s sensors.Sensor) *StuckSensor {
	return &StuckSensor{inner: s}
}

// Type implements sensors.Sensor.
func (s *StuckSensor) Type() sensors.SensorType { return s.inner.Type() }

// PowerDraw implements sensors.Sensor (the hardware still draws power).
func (s *StuckSensor) PowerDraw() float64 { return s.inner.PowerDraw() }

// Sample implements sensors.Sensor: the first call samples the wrapped
// sensor; every later call replays that reading regardless of env.
func (s *StuckSensor) Sample(env sensors.Environment) sensors.Reading {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen == nil {
		r := s.inner.Sample(env)
		s.frozen = &r
	}
	return *s.frozen
}
