// Package waveform synthesises the continuous signals of the EcoCapsule
// link: the continuous body wave (CBW), PIE symbols rendered either as
// classic on/off keying or as the paper's dual-frequency FSK (§3.3), the
// PZT ring effect (inertial tailing, Fig. 7), and the backscatter square
// modulation of the uplink (§3.4).
package waveform

import (
	"math"

	"ecocapsule/internal/coding"
)

// Synth renders pass-band waveforms at a fixed sample rate.
type Synth struct {
	// SampleRate in Hz. The evaluation's oscilloscope samples at 1 MS/s.
	SampleRate float64
}

// NewSynth returns a synthesiser at the given sample rate.
func NewSynth(fs float64) *Synth { return &Synth{SampleRate: fs} }

// Samples converts a duration to a sample count (floor, ≥0).
func (s *Synth) Samples(d float64) int {
	n := int(d * s.SampleRate)
	if n < 0 {
		return 0
	}
	return n
}

// Tone renders amp·sin(2πft) for the given duration starting at the given
// phase, returning the samples and the phase at the end (for continuity
// across segments).
func (s *Synth) Tone(f, amp, dur, phase float64) ([]float64, float64) {
	n := s.Samples(dur)
	out := make([]float64, n)
	w := 2 * math.Pi * f / s.SampleRate
	ph := phase
	for i := range out {
		out[i] = amp * math.Sin(ph)
		ph += w
	}
	return out, math.Mod(ph, 2*math.Pi)
}

// CBW renders the continuous body wave: a single-tone carrier of the given
// duration, the reader's charging signal (§3.2).
func (s *Synth) CBW(f, amp, dur float64) []float64 {
	out, _ := s.Tone(f, amp, dur, 0)
	return out
}

// RingEffect models the PZT inertia (§3.3): when the drive stops, the
// transducer keeps oscillating with an exponentially decaying envelope of
// time constant tau. AppendRingTail extends the waveform with such a tail
// continuing the final oscillation.
type RingEffect struct {
	// Tau is the decay time constant in seconds. Fig. 7a shows a tail
	// consuming ≈0.3 ms to dampen; tau ≈ 80 µs reproduces that.
	Tau float64
	// Frequency of the residual oscillation (the drive frequency).
	Frequency float64
}

// DefaultRing returns the Fig. 7a tail behaviour at the 230 kHz carrier.
func DefaultRing() RingEffect { return RingEffect{Tau: 80e-6, Frequency: 230e3} }

// Tail renders the decaying oscillation that follows a drive segment of
// amplitude amp ending at the given phase, for the given duration.
func (r RingEffect) Tail(s *Synth, amp, phase, dur float64) []float64 {
	n := s.Samples(dur)
	out := make([]float64, n)
	w := 2 * math.Pi * r.Frequency / s.SampleRate
	ph := phase
	for i := range out {
		t := float64(i) / s.SampleRate
		out[i] = amp * math.Exp(-t/r.Tau) * math.Sin(ph)
		ph += w
	}
	return out
}

// SettleTime returns how long the tail takes to fall below the given
// fraction of the drive amplitude.
func (r RingEffect) SettleTime(fraction float64) float64 {
	if fraction <= 0 || fraction >= 1 {
		return 0
	}
	return -r.Tau * math.Log(fraction)
}

// PIEWaveformOOK renders PIE bits as classic on/off keying at carrier fHigh:
// the transducer is driven during high edges and switched off during low
// pulses — but the ring effect keeps it oscillating, bleeding energy into
// the low edge exactly as Fig. 7a shows.
func (s *Synth) PIEWaveformOOK(cfg coding.PIEConfig, bits []byte, fHigh, amp float64, ring RingEffect) ([]float64, error) {
	edges, err := cfg.Encode(bits)
	if err != nil {
		return nil, err
	}
	var out []float64
	phase := 0.0
	for _, e := range edges {
		if e.High {
			var seg []float64
			seg, phase = s.Tone(fHigh, amp, e.Duration, phase)
			out = append(out, seg...)
			continue
		}
		// Low edge: drive off, ring tail decays over the pulse.
		tail := ring.Tail(s, amp, phase, e.Duration)
		out = append(out, tail...)
		phase = math.Mod(phase+2*math.Pi*ring.Frequency*e.Duration/1, 2*math.Pi)
		// Phase bookkeeping: keep continuity with the tail oscillation.
		phase = math.Mod(phase, 2*math.Pi)
	}
	return out, nil
}

// PIEWaveformFSK renders PIE bits with the paper's anti-ring trick (§3.3):
// high edges at the resonant frequency fHigh, low edges at the off-resonant
// fLow — the transducer never stops, so there is no inertial tail, and the
// concrete itself suppresses the off-resonant segments. offResonantGain is
// the relative amplitude the concrete lets through at fLow (from
// material.FrequencyResponse ratios).
func (s *Synth) PIEWaveformFSK(cfg coding.PIEConfig, bits []byte, fHigh, fLow, amp, offResonantGain float64) ([]float64, error) {
	edges, err := cfg.Encode(bits)
	if err != nil {
		return nil, err
	}
	var out []float64
	phase := 0.0
	for _, e := range edges {
		f, a := fHigh, amp
		if !e.High {
			f, a = fLow, amp*offResonantGain
		}
		var seg []float64
		seg, phase = s.Tone(f, a, e.Duration, phase)
		out = append(out, seg...)
	}
	return out, nil
}

// BackscatterModulate applies the node's impedance switching to an incident
// carrier: when the switch state is reflective the node re-radiates
// reflectGain of the incident wave, when absorptive it re-radiates
// absorbGain (≈0). states holds one boolean per half-symbol (true =
// reflective); each lasts halfDur seconds. The returned waveform is the
// backscattered component only.
func (s *Synth) BackscatterModulate(incident []float64, states []bool, halfDur, reflectGain, absorbGain float64) []float64 {
	out := make([]float64, len(incident))
	if len(states) == 0 {
		return out
	}
	perState := s.Samples(halfDur)
	if perState < 1 {
		perState = 1
	}
	for i := range incident {
		idx := i / perState
		if idx >= len(states) {
			idx = len(states) - 1
		}
		g := absorbGain
		if states[idx] {
			g = reflectGain
		}
		out[i] = incident[i] * g
	}
	return out
}

// FM0States converts FM0 half-symbol levels (±1) to impedance-switch
// states: +1 → reflective, −1 → absorptive.
func FM0States(halves []float64) []bool {
	states := make([]bool, len(halves))
	for i, v := range halves {
		states[i] = v > 0
	}
	return states
}

// SquareSubcarrier renders the node's BLF square wave itself (used for the
// Fig. 22-style raw backscatter burst): alternating reflect/absorb at blf
// Hz for dur seconds against a carrier of frequency fc and amplitude amp.
func (s *Synth) SquareSubcarrier(fc, blf, amp, dur float64) []float64 {
	n := s.Samples(dur)
	out := make([]float64, n)
	w := 2 * math.Pi * fc / s.SampleRate
	for i := range out {
		t := float64(i) / s.SampleRate
		level := 0.0
		if math.Mod(t*blf, 1) < 0.5 {
			level = 1
		}
		out[i] = amp * level * math.Sin(w*float64(i))
	}
	return out
}
