package waveform

import (
	"math"
	"testing"
	"testing/quick"

	"ecocapsule/internal/coding"
	"ecocapsule/internal/dsp"
	"ecocapsule/internal/units"
)

const fs = units.MHz // 1 MS/s, the evaluation's oscilloscope rate

func TestSamples(t *testing.T) {
	s := NewSynth(fs)
	if s.Samples(1e-3) != 1000 {
		t.Errorf("1 ms at 1 MS/s = %d samples, want 1000", s.Samples(1e-3))
	}
	if s.Samples(-1) != 0 {
		t.Error("negative duration must yield 0 samples")
	}
}

func TestTonePhaseContinuity(t *testing.T) {
	s := NewSynth(fs)
	a, ph := s.Tone(230e3, 1, 0.5e-3, 0)
	b, _ := s.Tone(230e3, 1, 0.5e-3, ph)
	joined := append(append([]float64(nil), a...), b...)
	full, _ := s.Tone(230e3, 1, 1e-3, 0)
	if len(joined) != len(full) {
		t.Fatalf("length mismatch %d vs %d", len(joined), len(full))
	}
	for i := range full {
		if math.Abs(joined[i]-full[i]) > 1e-9 {
			t.Fatalf("phase discontinuity at sample %d", i)
		}
	}
}

func TestToneAmplitudeAndFrequency(t *testing.T) {
	s := NewSynth(fs)
	x, _ := s.Tone(230e3, 2.5, 4e-3, 0)
	if m := dsp.MaxAbs(x); math.Abs(m-2.5) > 0.01 {
		t.Errorf("peak %g, want 2.5", m)
	}
	if f := dsp.PeakFrequency(x, fs, 100e3, 400e3); math.Abs(f-230e3) > 500 {
		t.Errorf("tone frequency %g, want 230 kHz", f)
	}
}

func TestCBW(t *testing.T) {
	s := NewSynth(fs)
	x := s.CBW(230e3, 1, 2e-3)
	if len(x) != 2000 {
		t.Fatalf("CBW length %d", len(x))
	}
	if math.Abs(dsp.RMS(x)-1/math.Sqrt2) > 0.01 {
		t.Errorf("CBW RMS %g, want ≈0.707", dsp.RMS(x))
	}
}

func TestRingTailDecays(t *testing.T) {
	s := NewSynth(fs)
	r := DefaultRing()
	tail := r.Tail(s, 1.0, math.Pi/2, 0.5e-3)
	if len(tail) == 0 {
		t.Fatal("empty tail")
	}
	early := dsp.MaxAbs(tail[:50])
	late := dsp.MaxAbs(tail[len(tail)-50:])
	if early < 0.8 {
		t.Errorf("tail must start near drive amplitude, got %g", early)
	}
	if late > 0.05 {
		t.Errorf("tail must decay by 0.5 ms, got %g", late)
	}
}

func TestRingSettleTimeMatchesFig7(t *testing.T) {
	// Fig. 7a: the vibration consumes ≈0.3 ms to dampen (to a few percent).
	r := DefaultRing()
	settle := r.SettleTime(0.03)
	if settle < 0.2e-3 || settle > 0.4e-3 {
		t.Errorf("settle time to 3%% = %.3g ms, want ≈0.3 ms", settle*1e3)
	}
	if r.SettleTime(0) != 0 || r.SettleTime(1.5) != 0 {
		t.Error("degenerate fractions must return 0")
	}
}

func TestRingSettleMonotoneProperty(t *testing.T) {
	r := DefaultRing()
	f := func(raw float64) bool {
		fr := math.Mod(math.Abs(raw), 0.98) + 0.01
		lower := r.SettleTime(fr / 2)
		higher := r.SettleTime(fr)
		return lower >= higher // settling to a smaller fraction takes longer
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// lowEdgeEnergy measures the RMS amplitude inside the low (PW) edge of the
// first PIE bit-0 symbol.
func lowEdgeEnergy(s *Synth, cfg coding.PIEConfig, x []float64) float64 {
	hi := s.Samples(cfg.HighZero)
	lo := s.Samples(cfg.PW)
	if hi+lo > len(x) {
		return 0
	}
	seg := x[hi : hi+lo]
	return dsp.RMS(seg)
}

func TestOOKHasTailFSKSuppressed(t *testing.T) {
	// The core Fig. 7 result: OOK low edges are polluted by the ring tail;
	// FSK low edges carry only the off-resonance-suppressed tone.
	s := NewSynth(fs)
	cfg := coding.DefaultPIE()
	bits := []byte{0}
	ook, err := s.PIEWaveformOOK(cfg, bits, 230e3, 1.0, DefaultRing())
	if err != nil {
		t.Fatal(err)
	}
	fsk, err := s.PIEWaveformFSK(cfg, bits, 230e3, 180e3, 1.0, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	// Early part of the OOK low edge rings strongly.
	hi := s.Samples(cfg.HighZero)
	ookEarlyLow := dsp.RMS(ook[hi : hi+s.Samples(0.1e-3)])
	if ookEarlyLow < 0.2 {
		t.Errorf("OOK low edge should ring (RMS %g)", ookEarlyLow)
	}
	fskLow := dsp.RMS(fsk[hi : hi+s.Samples(0.1e-3)])
	if fskLow > 0.15 {
		t.Errorf("FSK low edge should be suppressed (RMS %g)", fskLow)
	}
	if lowEdgeEnergy(s, cfg, fsk) > lowEdgeEnergy(s, cfg, ook)+0.05 {
		t.Error("FSK total low-edge energy should not exceed OOK's ringing edge")
	}
}

func TestFSKFrequenciesPresent(t *testing.T) {
	s := NewSynth(fs)
	cfg := coding.DefaultPIE()
	x, err := s.PIEWaveformFSK(cfg, []byte{0, 0, 0, 0}, 230e3, 180e3, 1.0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pHigh := dsp.Goertzel(x, fs, 230e3)
	pLow := dsp.Goertzel(x, fs, 180e3)
	if pHigh <= 0 || pLow <= 0 {
		t.Fatalf("both FSK tones must be present: %g / %g", pHigh, pLow)
	}
	if pHigh < pLow {
		t.Error("resonant tone should dominate (higher amplitude, longer share for equal edges? at least not weaker)")
	}
}

func TestPIEWaveformDuration(t *testing.T) {
	s := NewSynth(fs)
	cfg := coding.DefaultPIE()
	bits := []byte{0, 1, 0}
	x, err := s.PIEWaveformFSK(cfg, bits, 230e3, 180e3, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	want := s.Samples(cfg.Duration(bits))
	if math.Abs(float64(len(x)-want)) > 3 {
		t.Errorf("FSK waveform %d samples, want ≈%d", len(x), want)
	}
}

func TestPIEWaveformRejectsBadBits(t *testing.T) {
	s := NewSynth(fs)
	cfg := coding.DefaultPIE()
	if _, err := s.PIEWaveformOOK(cfg, []byte{7}, 230e3, 1, DefaultRing()); err == nil {
		t.Error("OOK must reject invalid bits")
	}
	if _, err := s.PIEWaveformFSK(cfg, []byte{7}, 230e3, 180e3, 1, 0.2); err == nil {
		t.Error("FSK must reject invalid bits")
	}
}

func TestBackscatterModulate(t *testing.T) {
	s := NewSynth(fs)
	carrier := s.CBW(230e3, 1, 2e-3)
	// 2 kHz switching → 0.25 ms per half-state.
	states := []bool{true, false, true, false, true, false, true, false}
	bs := s.BackscatterModulate(carrier, states, 0.25e-3, 0.5, 0.02)
	per := s.Samples(0.25e-3)
	on := dsp.RMS(bs[:per])
	off := dsp.RMS(bs[per : 2*per])
	if on < 5*off {
		t.Errorf("reflective state (%g) must dwarf absorptive (%g)", on, off)
	}
	if len(bs) != len(carrier) {
		t.Error("modulated length must match carrier")
	}
	// Empty states: all zero.
	z := s.BackscatterModulate(carrier, nil, 0.25e-3, 0.5, 0)
	if dsp.MaxAbs(z) != 0 {
		t.Error("no states must produce silence")
	}
}

func TestFM0StatesMapping(t *testing.T) {
	halves := []float64{1, -1, 1, 1, -1, -1}
	states := FM0States(halves)
	want := []bool{true, false, true, true, false, false}
	for i := range want {
		if states[i] != want[i] {
			t.Fatalf("state %d = %v, want %v", i, states[i], want[i])
		}
	}
}

func TestSquareSubcarrierSidebands(t *testing.T) {
	// A square-modulated carrier puts energy at fc and fc±blf — the
	// spectrum of Fig. 24.
	s := NewSynth(fs)
	x := s.SquareSubcarrier(230e3, 2e3, 1, 20e-3)
	pC := dsp.Goertzel(x, fs, 230e3)
	pU := dsp.Goertzel(x, fs, 232e3)
	pL := dsp.Goertzel(x, fs, 228e3)
	pFar := dsp.Goertzel(x, fs, 210e3)
	if pC <= 0 || pU <= 0 || pL <= 0 {
		t.Fatalf("carrier/sidebands missing: %g %g %g", pC, pU, pL)
	}
	if pU < 10*pFar || pL < 10*pFar {
		t.Errorf("sidebands (%g/%g) must rise above the floor (%g)", pU, pL, pFar)
	}
}
