package link

import (
	"math"
	"testing"

	"ecocapsule/internal/material"
	"ecocapsule/internal/units"
)

func TestSNRAtBitrateShape(t *testing.T) {
	eco := EcoCapsuleProfile()
	// Monotone non-increasing across the sweep.
	prev := math.Inf(1)
	for r := 1000.0; r <= 15000; r += 500 {
		snr := eco.SNRAtBitrate(r)
		if snr > prev+1e-9 {
			t.Fatalf("SNR must not grow with bitrate: %.2f dB at %.0f bps", snr, r)
		}
		prev = snr
	}
	// Fig. 16: the EcoCapsule SNR drops rapidly beyond 13 kbps.
	at13 := eco.SNRAtBitrate(13000)
	at15 := eco.SNRAtBitrate(15000)
	if at13-at15 < 3 {
		t.Errorf("collapse beyond 13 kbps too soft: %.1f → %.1f dB", at13, at15)
	}
	if eco.SNRAtBitrate(0) != eco.ReferenceSNRdB {
		t.Error("zero bitrate returns the reference SNR")
	}
}

func TestMaxBitratesMatchFig16(t *testing.T) {
	eco := EcoCapsuleProfile().MaxBitrate()
	pab := PABProfile().MaxBitrate()
	u2b := U2BProfile().MaxBitrate()
	if eco < 11000 || eco > 15000 {
		t.Errorf("EcoCapsule max bitrate %.0f, want ≈13 kbps", eco)
	}
	if pab < 2000 || pab > 4500 {
		t.Errorf("PAB max bitrate %.0f, want ≈3 kbps", pab)
	}
	if u2b <= eco {
		t.Errorf("U²B (%.0f) must out-scale EcoCapsule (%.0f) in bitrate", u2b, eco)
	}
}

func TestU2BOvertakesBeyond9kbps(t *testing.T) {
	eco, u2b := EcoCapsuleProfile(), U2BProfile()
	// Below 9 kbps EcoCapsule wins; by 14 kbps U²B must win (Fig. 16).
	if eco.SNRAtBitrate(4000) <= u2b.SNRAtBitrate(4000) {
		t.Error("EcoCapsule should lead at 4 kbps")
	}
	if u2b.SNRAtBitrate(14000) <= eco.SNRAtBitrate(14000) {
		t.Error("U²B should lead at 14 kbps")
	}
}

func TestBERWaterfall(t *testing.T) {
	eco := EcoCapsuleProfile()
	curve := BERCurve(eco, []float64{0, 2, 4, 6, 8, 10}, 40000, 1)
	// Monotone non-increasing BER with SNR.
	for i := 1; i < len(curve); i++ {
		if curve[i].BER() > curve[i-1].BER()+0.02 {
			t.Errorf("BER must fall with SNR: %.4g at %g dB after %.4g",
				curve[i].BER(), curve[i].SNRdB, curve[i-1].BER())
		}
	}
	// Near-coin-flip at very low SNR, tiny at 10 dB.
	if b := curve[0].BER(); b < 0.05 {
		t.Errorf("BER at 0 dB = %.3g, expected substantial", b)
	}
	if b := curve[len(curve)-1].BER(); b > 1e-3 {
		t.Errorf("BER at 10 dB = %.3g, expected ≤1e-3", b)
	}
}

func TestPABNeedsMoreSNRThanEco(t *testing.T) {
	// Fig. 15: the PAB waterfall sits ≈3 dB to the right.
	snr := 7.0
	eco := MeasureBER(EcoCapsuleProfile(), snr, 60000, 2).BER()
	pab := MeasureBER(PABProfile(), snr, 60000, 2).BER()
	if pab <= eco {
		t.Errorf("at %g dB PAB BER (%.4g) must exceed EcoCapsule's (%.4g)", snr, pab, eco)
	}
}

func TestBERResultEmpty(t *testing.T) {
	if (BERResult{}).BER() != 0.5 {
		t.Error("empty BER result must report 0.5")
	}
}

func TestThroughputByConcreteMatchesFig17(t *testing.T) {
	// Fig. 17: all ≥ ≈13 kbps; UHPC/UHPFRC ≈2 kbps above NC.
	_, ncT := BestThroughput(ProfileForConcrete(material.NC()), 3)
	_, uhpcT := BestThroughput(ProfileForConcrete(material.UHPC()), 3)
	_, frcT := BestThroughput(ProfileForConcrete(material.UHPFRC()), 3)
	if ncT < 11000 {
		t.Errorf("NC throughput %.0f, want ≥≈11–13 kbps", ncT)
	}
	if uhpcT < ncT+800 {
		t.Errorf("UHPC (%.0f) should beat NC (%.0f) by ≈2 kbps", uhpcT, ncT)
	}
	if frcT < ncT+800 {
		t.Errorf("UHPFRC (%.0f) should beat NC (%.0f) by ≈2 kbps", frcT, ncT)
	}
	if frcT < uhpcT-1500 {
		t.Errorf("UHPFRC (%.0f) should not trail UHPC (%.0f) badly", frcT, uhpcT)
	}
}

func TestProfileForConcreteBandClamp(t *testing.T) {
	weak := &material.Material{Name: "weak", Kind: material.Solid, PeakResponse: 0.1}
	p := ProfileForConcrete(weak)
	if p.UsableBandwidthHz < 10*units.KHz {
		t.Errorf("usable band must clamp at 10 kHz, got %g", p.UsableBandwidthHz)
	}
}

func TestRangeModelsMatchFig12Anchors(t *testing.T) {
	p1 := PABPool1Model()
	// 19 cm at 50 V, ≈200 cm at 200 V.
	if d := p1.RangeAt(50); math.Abs(d-0.19) > 0.08 {
		t.Errorf("pool1 at 50 V = %.2f m, want ≈0.19", d)
	}
	if d := p1.RangeAt(200); math.Abs(d-2.0) > 0.6 {
		t.Errorf("pool1 at 200 V = %.2f m, want ≈2.0", d)
	}
	p2 := PABPool2Model()
	// 23 cm at 84 V; 6.5 m at only 125 V.
	if d := p2.RangeAt(84); math.Abs(d-0.23) > 0.15 {
		t.Errorf("pool2 at 84 V = %.2f m, want ≈0.23", d)
	}
	if d := p2.RangeAt(125); math.Abs(d-6.5) > 2.0 {
		t.Errorf("pool2 at 125 V = %.2f m, want ≈6.5", d)
	}
	if p2.RangeAt(0) != 0 {
		t.Error("zero voltage → zero range")
	}
	if p2.RangeAt(1000) > p2.MaxRange {
		t.Error("range must cap at the pool length")
	}
}

func TestRangeModelMonotone(t *testing.T) {
	for _, m := range []RangeModel{PABPool1Model(), PABPool2Model()} {
		prev := -1.0
		for v := 10.0; v <= 250; v += 10 {
			d := m.RangeAt(v)
			if d < prev {
				t.Fatalf("%s: range must grow with voltage", m.Name)
			}
			prev = d
		}
	}
}

func TestThroughputPositive(t *testing.T) {
	if tp := Throughput(EcoCapsuleProfile(), 1000, 5); tp < 900 {
		t.Errorf("1 kbps goodput %.0f implausible", tp)
	}
}
