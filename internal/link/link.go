// Package link provides end-to-end link-level simulation harnesses for the
// evaluation experiments: Monte-Carlo BER-vs-SNR sweeps of the FM0 uplink
// (Fig. 15), the SNR-vs-bitrate behaviour bounded by the channel's ring-down
// and carrier bandwidth (Fig. 16), and throughput measurements per concrete
// type (Fig. 17). Three link profiles are modelled: EcoCapsule (230 kHz
// in-concrete), PAB (15 kHz underwater backscatter, the SIGCOMM'19
// baseline), and U²B (ultra-wideband underwater backscatter).
package link

import (
	"math"

	"ecocapsule/internal/coding"
	"ecocapsule/internal/conc"
	"ecocapsule/internal/dsp"
	"ecocapsule/internal/material"
	"ecocapsule/internal/units"
)

// Profile characterises one backscatter link family.
type Profile struct {
	Name string
	// CarrierHz of the power/backscatter carrier.
	//ecolint:unit hz
	CarrierHz float64
	// UsableBandwidthHz the carrier can piggyback: "a carrier with a
	// higher frequency can piggyback a wider data band" (§5.3).
	//ecolint:unit hz
	UsableBandwidthHz float64
	// ReferenceSNRdB is the link SNR at 1 kbps under the experiment's
	// nominal geometry.
	ReferenceSNRdB float64
	// RingDownTime is the channel's reverberation/tail time constant in
	// seconds; symbols shorter than this suffer ISI.
	RingDownTime float64
	// DecoderPenaltyDB shifts the BER waterfall (FM0 implementation and
	// synchronisation quality differences).
	DecoderPenaltyDB float64
}

// EcoCapsuleProfile is the in-concrete link of this paper: SNR holds to
// ≈13 kbps then collapses (Fig. 16), BER floor reached by ≈8 dB (Fig. 15).
func EcoCapsuleProfile() Profile {
	return Profile{
		Name:              "EcoCapsule",
		CarrierHz:         230 * units.KHz,
		UsableBandwidthHz: 13 * units.KHz,
		ReferenceSNRdB:    16,
		RingDownTime:      20e-6,
		DecoderPenaltyDB:  0,
	}
}

// PABProfile is the underwater baseline: 15 kHz carrier limits it to
// ≈3 kbps; its BER floor needs ≈11 dB.
func PABProfile() Profile {
	return Profile{
		Name:              "PAB",
		CarrierHz:         15 * units.KHz,
		UsableBandwidthHz: 3 * units.KHz,
		ReferenceSNRdB:    15,
		RingDownTime:      100e-6,
		DecoderPenaltyDB:  3,
	}
}

// U2BProfile is the ultra-wideband underwater comparator: lower SNR at low
// bitrates but a much wider band, overtaking EcoCapsule beyond ≈9 kbps.
func U2BProfile() Profile {
	return Profile{
		Name:              "U2B",
		CarrierHz:         30 * units.KHz,
		UsableBandwidthHz: 28 * units.KHz,
		ReferenceSNRdB:    13,
		RingDownTime:      18e-6,
		DecoderPenaltyDB:  1,
	}
}

// SNRAtBitrate returns the uplink SNR (dB) at the given bitrate (bit/s) for
// this profile — the Fig. 16 curves. Two effects stack:
//
//   - matched-filter noise bandwidth grows with the bitrate: −10·log10(R/1k);
//   - once the symbol window shrinks into the channel ring-down (or the
//     band exceeds the carrier's usable bandwidth) ISI collapses the SNR.
func (p Profile) SNRAtBitrate(bitrate float64) float64 {
	if bitrate <= 0 {
		return p.ReferenceSNRdB
	}
	snr := p.ReferenceSNRdB - 4*math.Log10(bitrate/1000)
	// ISI knee at the usable bandwidth: a soft cliff beyond it.
	x := bitrate / p.UsableBandwidthHz
	if x > 0.85 {
		snr -= 18 * (x - 0.85) * (x - 0.85) / (0.15 * 0.15) * 0.2
	}
	if x > 1 {
		snr -= 25 * (x - 1)
	}
	// Ring-down ISI: symbol duration below ~3 ring-down constants hurts.
	sym := 1 / bitrate
	if sym < 3*p.RingDownTime {
		snr -= 10 * (3*p.RingDownTime/sym - 1)
	}
	return snr
}

// MaxBitrate returns the highest bitrate (bit/s) that keeps the SNR above
// the decodability floor (≈3 dB, where Fig. 16 shows the collapse).
func (p Profile) MaxBitrate() float64 {
	const floor = 3.0
	lo, hi := 100.0, 40*units.KHz
	if p.SNRAtBitrate(hi) > floor {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if p.SNRAtBitrate(mid) > floor {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// BERResult is one Monte-Carlo point.
type BERResult struct {
	SNRdB    float64
	BitsSent int
	BitErrs  int
}

// BER returns the measured bit error rate (0.5 for empty runs).
func (r BERResult) BER() float64 {
	if r.BitsSent == 0 {
		return 0.5
	}
	return float64(r.BitErrs) / float64(r.BitsSent)
}

// MeasureBER runs a Monte-Carlo FM0 uplink at the given SNR (dB, per-bit)
// until maxBits have been sent or enough errors have accumulated for a
// stable estimate. The profile's decoder penalty shifts the effective SNR.
func MeasureBER(p Profile, snrDB float64, maxBits int, seed int64) BERResult {
	eff := snrDB - p.DecoderPenaltyDB
	// Per-half-symbol noise sigma for unit-amplitude halves: each bit has
	// two halves, so Eb = 2·(1)²·T/2 per half... with unit halves and two
	// halves per bit, SNR per bit = 2/(2σ²) = 1/σ².
	sigma := math.Pow(10, -eff/20)
	noise := dsp.NewNoiseSource(seed)
	const chunk = 512
	res := BERResult{SNRdB: snrDB}
	bits := make([]byte, chunk)
	for res.BitsSent < maxBits {
		for i := range bits {
			bits[i] = byte(noise.Intn(2))
		}
		halves, err := coding.FM0Encode(bits)
		if err != nil {
			break
		}
		for i := range halves {
			halves[i] += noise.Gaussian(sigma)
		}
		got := coding.FM0DecodeML(halves)
		for i := range bits {
			if got[i] != bits[i] {
				res.BitErrs++
			}
		}
		res.BitsSent += len(bits)
		// Early exit once the estimate is stable.
		if res.BitErrs > 400 {
			break
		}
	}
	return res
}

// BERCurve sweeps SNR values and returns the waterfall (Fig. 15). The
// points are independent Monte-Carlo runs with per-point seeds, so they
// measure concurrently into indexed slots — same bytes as the serial sweep,
// a fraction of the wall clock.
func BERCurve(p Profile, snrsDB []float64, maxBits int, seed int64) []BERResult {
	out := make([]BERResult, len(snrsDB))
	conc.For(len(snrsDB), func(i int) {
		out[i] = MeasureBER(p, snrsDB[i], maxBits, seed+int64(i))
	})
	return out
}

// Throughput returns goodput in bit/s at the given bitrate: bits correctly
// decoded per second, i.e. R·(1−BER(SNR(R))) with the profile's SNR model.
func Throughput(p Profile, bitrate float64, seed int64) float64 {
	snr := p.SNRAtBitrate(bitrate)
	ber := MeasureBER(p, snr, 20000, seed).BER()
	return bitrate * (1 - ber)
}

// BestThroughput scans bitrates and returns (bestBitrate, bestGoodput) —
// the Fig. 17 measurement per concrete block. Each candidate bitrate is an
// independent measurement (NewNoiseSource per call), so the scan fans out
// and the winner is picked from the indexed results in ascending-bitrate
// order, exactly as the serial loop did.
func BestThroughput(p Profile, seed int64) (float64, float64) {
	var rates []float64
	for r := 1000.0; r <= 20000; r += 500 {
		rates = append(rates, r)
	}
	tps := make([]float64, len(rates))
	conc.For(len(rates), func(i int) {
		tps[i] = Throughput(p, rates[i], seed)
	})
	bestR, bestT := 0.0, 0.0
	for i, r := range rates {
		if tps[i] > bestT {
			bestR, bestT = r, tps[i]
		}
	}
	return bestR, bestT
}

// ProfileForConcrete derives an EcoCapsule profile embedded in the given
// concrete: stronger concrete (higher impedance, lower attenuation) buys a
// higher reference SNR and a slightly wider usable band — the ≈+2 kbps of
// UHPC/UHPFRC over NC in Fig. 17.
func ProfileForConcrete(m *material.Material) Profile {
	p := EcoCapsuleProfile()
	p.Name = "EcoCapsule/" + m.Name
	nc := material.NC()
	// Normalise against NC: response ratio in dB shifts the reference SNR.
	rel := m.PeakResponse / nc.PeakResponse
	p.ReferenceSNRdB += units.DB(rel) * 0.35
	p.UsableBandwidthHz = 13*units.KHz + 2*units.KHz*math.Log2(rel+0.001)/math.Log2(2.8)
	if p.UsableBandwidthHz < 10*units.KHz {
		p.UsableBandwidthHz = 10 * units.KHz
	}
	return p
}

// RangeModel computes the Fig. 12 range-vs-voltage curves analytically for
// the PAB pools (the concrete structures use reader.MaxPowerUpRange).
// Underwater spreading is spherical without strong confinement in Pool 1
// and corridor-guided in Pool 2.
type RangeModel struct {
	Name string
	// V0 is the voltage that powers a node at the reference 10 cm.
	V0 float64
	// Exponent of the distance-voltage law d ∝ (V/V0)^Exponent.
	Exponent float64
	// MaxRange caps the sweep at the pool length (m).
	MaxRange float64
}

// PABPool1Model: 19 cm at 50 V, 200 cm at 200 V — a steep super-linear
// growth (d ∝ V^1.7) as the multiplier escapes its dead zone.
func PABPool1Model() RangeModel {
	return RangeModel{Name: "PAB-pool1", V0: 34.3, Exponent: 1.7, MaxRange: 8}
}

// PABPool2Model: the elongated corridor pool — 23 cm needs 84 V but only
// 125 V reaches 6.5 m (§5.2): an extremely steep curve (d ∝ V^8.4) because
// the corridor keeps the wave collimated once it couples.
func PABPool2Model() RangeModel {
	return RangeModel{Name: "PAB-pool2", V0: 76.1, Exponent: 8.41, MaxRange: 12}
}

// RangeAt returns the maximum power-up range (m) at drive voltage v.
func (m RangeModel) RangeAt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	d := 0.1 * math.Pow(v/m.V0, m.Exponent)
	if d < 0 {
		d = 0
	}
	if d > m.MaxRange {
		d = m.MaxRange
	}
	return d
}
