package core

import (
	"errors"
	"math"
	"testing"

	"ecocapsule/internal/geometry"
	"ecocapsule/internal/node"
	"ecocapsule/internal/physics"
	"ecocapsule/internal/reader"
)

func TestNewCastingValidation(t *testing.T) {
	if _, err := NewCasting(nil); err == nil {
		t.Error("nil structure must error")
	}
	bad := &geometry.Structure{Name: "bare", Shape: geometry.Box}
	if _, err := NewCasting(bad); err == nil {
		t.Error("structure without material must error")
	}
	if _, err := NewCasting(geometry.Slab()); err != nil {
		t.Errorf("slab casting: %v", err)
	}
}

func TestCapsuleVolume(t *testing.T) {
	// 45 mm sphere ≈ 47.7 cm³.
	got := CapsuleVolume() / 1e-6
	if math.Abs(got-47.7) > 1 {
		t.Errorf("capsule volume %.1f cm³, want ≈47.7", got)
	}
}

func TestStructureVolume(t *testing.T) {
	c, _ := NewCasting(geometry.Slab())
	want := 1.5 * 0.5 * 0.15
	if math.Abs(c.StructureVolume()-want) > 1e-12 {
		t.Errorf("slab volume %g, want %g", c.StructureVolume(), want)
	}
	col, _ := NewCasting(geometry.Column())
	wantCol := math.Pi * 0.35 * 0.35 * 2.5
	if math.Abs(col.StructureVolume()-wantCol) > 1e-9 {
		t.Errorf("column volume %g, want %g", col.StructureVolume(), wantCol)
	}
}

func TestMixValidations(t *testing.T) {
	c, _ := NewCasting(geometry.Slab())
	inside := node.New(node.Config{Handle: 1, Position: geometry.Vec3{X: 0.7, Y: 0.2, Z: 0.07}})
	if err := c.Mix(inside); err != nil {
		t.Fatalf("valid mix: %v", err)
	}
	outside := node.New(node.Config{Handle: 2, Position: geometry.Vec3{X: 9, Y: 0.2, Z: 0.07}})
	if err := c.Mix(outside); !errors.Is(err, ErrOutside) {
		t.Errorf("outside: %v", err)
	}
	dup := node.New(node.Config{Handle: 1, Position: geometry.Vec3{X: 0.3, Y: 0.2, Z: 0.07}})
	if err := c.Mix(dup); !errors.Is(err, ErrDuplicate) {
		t.Errorf("duplicate: %v", err)
	}
}

func TestMixVolumeCap(t *testing.T) {
	// The slab holds 0.1125 m³; 0.5 % is ≈0.56 L ≈ 11 capsules.
	c, _ := NewCasting(geometry.Slab())
	var err error
	placed := 0
	for i := 0; i < 40; i++ {
		n := node.New(node.Config{
			Handle:   uint16(i + 1),
			Position: geometry.Vec3{X: 0.03 * float64(i+1), Y: 0.2, Z: 0.07},
		})
		if err = c.Mix(n); err != nil {
			break
		}
		placed++
	}
	if !errors.Is(err, ErrOverfilled) {
		t.Fatalf("expected overfill, got %v after %d capsules", err, placed)
	}
	if placed < 5 || placed > 20 {
		t.Errorf("placed %d capsules before the cap; expected ≈11", placed)
	}
}

func TestMixShellCrush(t *testing.T) {
	// A tall column with a capsule at the bottom of a 300 m pour — use a
	// synthetic skyscraper-core structure.
	tall := &geometry.Structure{
		Name: "core-wall", Shape: geometry.Box,
		Material: geometry.CommonWall().Material,
		Length:   5, Height: 300, Thickness: 0.5,
	}
	c, err := NewCasting(tall)
	if err != nil {
		t.Fatal(err)
	}
	deep := node.New(node.Config{Handle: 1, Position: geometry.Vec3{X: 1, Y: 1, Z: 0.2}})
	if err := c.Mix(deep); !errors.Is(err, ErrShellCrushed) {
		t.Errorf("resin shell at 299 m depth must crush: %v", err)
	}
	// The same position with a steel shell survives.
	steel := node.New(node.Config{
		Handle: 2, Position: geometry.Vec3{X: 1, Y: 1, Z: 0.2},
		Shell: physics.SteelShell(),
	})
	if err := c.Mix(steel); err != nil {
		t.Errorf("steel shell must survive: %v", err)
	}
}

func TestSealAndCTReport(t *testing.T) {
	c, _ := NewCasting(geometry.Slab())
	for i := 0; i < 3; i++ {
		n := node.New(node.Config{
			Handle:   uint16(i + 1),
			Position: geometry.Vec3{X: 0.3 * float64(i+1), Y: 0.25, Z: 0.07},
		})
		if err := c.Mix(n); err != nil {
			t.Fatal(err)
		}
	}
	rep := c.Seal()
	if rep.Capsules != 3 || !rep.Intact() {
		t.Errorf("CT report %+v, want 3 intact", rep)
	}
	if rep.VolumeFraction <= 0 || rep.VolumeFraction > MaxCapsuleVolumeFraction {
		t.Errorf("volume fraction %g out of range", rep.VolumeFraction)
	}
	if !c.Sealed() {
		t.Error("casting must report sealed")
	}
	late := node.New(node.Config{Handle: 9, Position: geometry.Vec3{X: 0.1, Y: 0.25, Z: 0.07}})
	if err := c.Mix(late); !errors.Is(err, ErrSealed) {
		t.Errorf("mixing after seal: %v", err)
	}
	if len(c.Nodes()) != 3 {
		t.Error("node accessor")
	}
	if c.Structure() == nil {
		t.Error("structure accessor")
	}
}

func TestAttachReaderRequiresSeal(t *testing.T) {
	c, _ := NewCasting(geometry.CommonWall())
	n := node.New(node.Config{Handle: 1, Position: geometry.Vec3{X: 1, Y: 10, Z: 0.1}})
	if err := c.Mix(n); err != nil {
		t.Fatal(err)
	}
	cfg := reader.Config{
		TXPosition:   geometry.Vec3{X: 0.1, Y: 10, Z: 0},
		DriveVoltage: 200,
	}
	if _, err := c.AttachReader(cfg); err == nil {
		t.Error("attaching before seal must error")
	}
	c.Seal()
	r, err := c.AttachReader(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes()) != 1 {
		t.Error("reader must see the embedded capsule")
	}
	// End-to-end smoke: charge then inventory through the casting.
	if up := r.Charge(0.3); up != 1 {
		t.Errorf("capsule must power up, got %d", up)
	}
	res := r.Inventory(8)
	if len(res.Discovered) != 1 || res.Discovered[0] != 1 {
		t.Errorf("inventory through the casting failed: %+v", res)
	}
}

func TestPlanGrid(t *testing.T) {
	s := geometry.CommonWall()
	nodes := PlanGrid(s, 5, 0x10, 1)
	if len(nodes) != 5 {
		t.Fatalf("plan size %d", len(nodes))
	}
	seen := map[uint16]bool{}
	for _, n := range nodes {
		if !s.Inside(n.Position()) {
			t.Errorf("planned position %+v outside the wall", n.Position())
		}
		if seen[n.Handle()] {
			t.Error("duplicate handle in plan")
		}
		seen[n.Handle()] = true
	}
	// Positions spread monotonically along the long axis.
	for i := 1; i < len(nodes); i++ {
		if nodes[i].Position().X <= nodes[i-1].Position().X {
			t.Error("grid must advance along the axis")
		}
	}
	if PlanGrid(s, 0, 1, 1) != nil {
		t.Error("zero count must return nil")
	}
	// Cylinder plan advances along Y.
	col := geometry.Column()
	cnodes := PlanGrid(col, 3, 1, 2)
	for i := 1; i < len(cnodes); i++ {
		if cnodes[i].Position().Y <= cnodes[i-1].Position().Y {
			t.Error("column grid must advance along the axis")
		}
	}
}
