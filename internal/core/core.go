// Package core is the paper's primary contribution assembled as a system:
// self-sensing concrete. A Casting mixes EcoCapsule nodes into a concrete
// structure (checking shell survivability per §4.1 and capsule volume
// fraction per §8's structural-risk caveat), verifies intactness the way
// the CT examination of Fig. 10 does, and produces a deployment a Reader
// can attach to for charging, inventory, and sensing.
package core

import (
	"errors"
	"fmt"

	"ecocapsule/internal/geometry"
	"ecocapsule/internal/node"
	"ecocapsule/internal/physics"
	"ecocapsule/internal/reader"
	"ecocapsule/internal/units"
)

// MaxCapsuleVolumeFraction caps how much of the structure's volume the
// embedded capsules may displace. The conclusion (§8) flags the structural
// risk of mixing large numbers of capsules; 0.5 % keeps the filler minor
// relative to sand and aggregate.
const MaxCapsuleVolumeFraction = 0.005

// CapsuleVolume is the displaced volume of one capsule (45 mm sphere), m³.
func CapsuleVolume() float64 {
	r := 45 * units.MM / 2
	return 4.0 / 3.0 * 3.141592653589793 * r * r * r
}

// Casting is a self-sensing concrete pour in progress.
type Casting struct {
	structure *geometry.Structure
	nodes     []*node.Node
	sealed    bool
}

// NewCasting starts a pour into the given structure.
func NewCasting(s *geometry.Structure) (*Casting, error) {
	if s == nil {
		return nil, errors.New("core: nil structure")
	}
	if s.Material == nil || s.Material.Density <= 0 {
		return nil, errors.New("core: structure needs a concrete material")
	}
	return &Casting{structure: s}, nil
}

// StructureVolume returns the host volume in m³.
func (c *Casting) StructureVolume() float64 {
	s := c.structure
	if s.Shape == geometry.Cylinder {
		r := s.Diameter / 2
		return 3.141592653589793 * r * r * s.Height
	}
	return s.Length * s.Height * s.Thickness
}

// Errors returned while mixing capsules.
var (
	ErrSealed       = errors.New("core: casting already sealed")
	ErrOutside      = errors.New("core: capsule position outside the mould")
	ErrOverfilled   = errors.New("core: capsule volume fraction exceeds the structural-risk cap")
	ErrDuplicate    = errors.New("core: duplicate capsule handle")
	ErrShellCrushed = errors.New("core: shell cannot survive the embedment pressure")
)

// Mix adds one capsule to the pour at its configured position. The shell
// stress check uses the capsule's depth below the top of the pour.
func (c *Casting) Mix(n *node.Node) error {
	if c.sealed {
		return ErrSealed
	}
	pos := n.Position()
	if !c.structure.Inside(pos) {
		return fmt.Errorf("%w: %+v in %s", ErrOutside, pos, c.structure.Name)
	}
	for _, existing := range c.nodes {
		if existing.Handle() == n.Handle() {
			return fmt.Errorf("%w: %#04x", ErrDuplicate, n.Handle())
		}
	}
	// Depth of concrete head above the capsule.
	depth := c.structure.Height - pos.Y
	if depth < 0 {
		depth = 0
	}
	if err := n.EmbedCheck(c.structure.Material.Density, depth); err != nil {
		return fmt.Errorf("%w: %v", ErrShellCrushed, err)
	}
	newFraction := float64(len(c.nodes)+1) * CapsuleVolume() / c.StructureVolume()
	if newFraction > MaxCapsuleVolumeFraction {
		return fmt.Errorf("%w: %.4f%% > %.4f%%", ErrOverfilled,
			newFraction*100, MaxCapsuleVolumeFraction*100)
	}
	c.nodes = append(c.nodes, n)
	return nil
}

// CTReport is the result of the Fig. 10 intactness examination.
type CTReport struct {
	Capsules       int
	IntactShells   int
	VolumeFraction float64
}

// Intact reports whether every shell survived the pour.
func (r CTReport) Intact() bool { return r.Capsules == r.IntactShells }

// Seal cures the pour and runs the CT-style verification: every capsule's
// shell is re-checked against the final embedment pressure. After Seal the
// casting is immutable (capsules are implanted permanently, §1).
func (c *Casting) Seal() CTReport {
	c.sealed = true
	rep := CTReport{
		Capsules:       len(c.nodes),
		VolumeFraction: float64(len(c.nodes)) * CapsuleVolume() / c.StructureVolume(),
	}
	for _, n := range c.nodes {
		depth := c.structure.Height - n.Position().Y
		if depth < 0 {
			depth = 0
		}
		if n.EmbedCheck(c.structure.Material.Density, depth) == nil {
			rep.IntactShells++
		}
	}
	return rep
}

// Sealed reports whether the pour has cured.
func (c *Casting) Sealed() bool { return c.sealed }

// Nodes returns the embedded capsules.
func (c *Casting) Nodes() []*node.Node {
	out := make([]*node.Node, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// Structure returns the host structure.
func (c *Casting) Structure() *geometry.Structure { return c.structure }

// AttachReader mounts a reader on the cured structure and deploys every
// embedded capsule into its acoustic field.
func (c *Casting) AttachReader(cfg reader.Config) (*reader.Reader, error) {
	if !c.sealed {
		return nil, errors.New("core: seal the casting before attaching a reader")
	}
	cfg.Structure = c.structure
	r, err := reader.New(cfg)
	if err != nil {
		return nil, err
	}
	for _, n := range c.nodes {
		if err := r.Deploy(n); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// PlanGrid positions count capsules in a regular grid through the
// structure's interior, spaced along the long axis at mid-height and
// mid-thickness — a practical pour plan when exact positions don't matter.
func PlanGrid(s *geometry.Structure, count int, firstHandle uint16, seed int64) []*node.Node {
	if count <= 0 {
		return nil
	}
	nodes := make([]*node.Node, 0, count)
	axis := s.MaxRangeAxis()
	for i := 0; i < count; i++ {
		frac := (float64(i) + 0.5) / float64(count)
		var pos geometry.Vec3
		if s.Shape == geometry.Cylinder {
			pos = geometry.Vec3{X: 0, Y: frac * axis, Z: 0}
		} else {
			pos = geometry.Vec3{X: frac * s.Length, Y: s.Height / 2, Z: s.Thickness / 2}
		}
		nodes = append(nodes, node.New(node.Config{
			Handle:   firstHandle + uint16(i),
			Position: pos,
			Shell:    physics.ResinShell(),
			Seed:     seed + int64(i),
		}))
	}
	return nodes
}
