package units

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %g, want %g (±%g)", msg, got, want, tol)
	}
}

func TestDBRoundTrip(t *testing.T) {
	for _, db := range []float64{-30, -3, 0, 3, 10, 20} {
		got := DB(FromDB(db))
		approx(t, got, db, 1e-9, "DB(FromDB(x))")
	}
}

func TestDBKnownValues(t *testing.T) {
	approx(t, DB(10), 10, 1e-12, "DB(10)")
	approx(t, DB(100), 20, 1e-12, "DB(100)")
	approx(t, DB(1), 0, 1e-12, "DB(1)")
	if !math.IsInf(DB(0), -1) {
		t.Error("DB(0) should be -Inf")
	}
	if !math.IsInf(DB(-1), -1) {
		t.Error("DB(-1) should be -Inf")
	}
}

func TestAmplitudeDB(t *testing.T) {
	approx(t, AmplitudeDB(10), 20, 1e-12, "AmplitudeDB(10)")
	approx(t, FromAmplitudeDB(20), 10, 1e-12, "FromAmplitudeDB(20)")
	if !math.IsInf(AmplitudeDB(0), -1) {
		t.Error("AmplitudeDB(0) should be -Inf")
	}
}

func TestAmplitudeDBRoundTripProperty(t *testing.T) {
	f := func(x float64) bool {
		db := math.Mod(math.Abs(x), 120) - 60 // bound to [-60, 60) dB
		return math.Abs(AmplitudeDB(FromAmplitudeDB(db))-db) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDegRadRoundTrip(t *testing.T) {
	for _, deg := range []float64{0, 11, 34, 45, 73, 90, 180} {
		approx(t, Rad2Deg(Deg2Rad(deg)), deg, 1e-9, "Rad2Deg(Deg2Rad)")
	}
	approx(t, Deg2Rad(180), math.Pi, 1e-12, "Deg2Rad(180)")
}

func TestClamp(t *testing.T) {
	approx(t, Clamp(5, 0, 10), 5, 0, "inside")
	approx(t, Clamp(-5, 0, 10), 0, 0, "below")
	approx(t, Clamp(15, 0, 10), 10, 0, "above")
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		c := Clamp(v, lo, hi)
		return c >= lo && c <= hi
	}
	cfg := &quick.Config{MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	approx(t, Lerp(0, 10, 0.5), 5, 1e-12, "midpoint")
	approx(t, Lerp(2, 4, 0), 2, 1e-12, "t=0")
	approx(t, Lerp(2, 4, 1), 4, 1e-12, "t=1")
}

func TestInterpTable(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{0, 10, 20, 40}
	approx(t, InterpTable(xs, ys, 0.5), 5, 1e-12, "interp 0.5")
	approx(t, InterpTable(xs, ys, 3), 30, 1e-12, "interp 3")
	approx(t, InterpTable(xs, ys, -1), 0, 1e-12, "clamp low")
	approx(t, InterpTable(xs, ys, 9), 40, 1e-12, "clamp high")
	approx(t, InterpTable(xs, ys, 2), 20, 1e-12, "exact knot")
}

func TestInterpTableMonotoneProperty(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0, 1, 4, 9, 16, 25}
	f := func(raw float64) bool {
		x := math.Mod(math.Abs(raw), 5)
		y := InterpTable(xs, ys, x)
		return y >= 0 && y <= 25
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpTablePanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on mismatched tables")
		}
	}()
	InterpTable([]float64{1, 2}, []float64{1}, 1.5)
}
