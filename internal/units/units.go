// Package units provides physical constants and unit-conversion helpers
// shared by the EcoCapsule simulation stack. All quantities are SI unless a
// suffix says otherwise (e.g. KHz, MPa, Mm for millimetres is never used —
// lengths are metres).
package units

import "math"

// Physical constants.
const (
	// Gravity is standard gravitational acceleration in m/s².
	//
	//ecolint:unit m/s^2
	Gravity = 9.80665
	// AtmosphericPressure is one standard atmosphere in Pa (101.325 kPa),
	// the internal pressure of a sealed EcoCapsule shell.
	//
	//ecolint:unit pa
	AtmosphericPressure = 101325.0
	// SpeedOfSoundAir is the nominal speed of sound in air, m/s.
	//
	//ecolint:unit m/s
	SpeedOfSoundAir = 343.0
)

// Convenience multipliers. The dimcheck annotations make expressions
// like 40*KHz carry their unit, so a frequency scaled by MS instead of
// KHz is flagged at the point of use.
const (
	KHz = 1e3  //ecolint:unit hz (kilohertz in Hz)
	MHz = 1e6  //ecolint:unit hz (megahertz in Hz)
	KPa = 1e3  //ecolint:unit pa (kilopascal in Pa)
	MPa = 1e6  //ecolint:unit pa (megapascal in Pa)
	GPa = 1e9  //ecolint:unit pa (gigapascal in Pa)
	MM  = 1e-3 //ecolint:unit m (millimetre in m)
	CM  = 1e-2 //ecolint:unit m (centimetre in m)
	UW  = 1e-6 //ecolint:unit w (microwatt in W)
	MW  = 1e-3 //ecolint:unit w (milliwatt in W)
	MS  = 1e-3 //ecolint:unit s (millisecond in s)
	US  = 1e-6 //ecolint:unit s (microsecond in s)
	UE  = 1e-6 //ecolint:unit dimensionless (microstrain in strain)
	MV  = 1e-3 //ecolint:unit v (millivolt in V)
	UV  = 1e-6 //ecolint:unit v (microvolt in V)
	MJ  = 1e-3 //ecolint:unit j (millijoule in J)
	UJ  = 1e-6 //ecolint:unit j (microjoule in J)
)

// DB converts a linear power ratio to decibels. Ratios <= 0 return -Inf.
//
//ecolint:unit return db
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a linear power ratio.
//
//ecolint:unit db db
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// AmplitudeDB converts a linear amplitude ratio to decibels (20·log10).
//
//ecolint:unit return db
func AmplitudeDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ratio)
}

// FromAmplitudeDB converts decibels to a linear amplitude ratio.
//
//ecolint:unit db db
func FromAmplitudeDB(db float64) float64 {
	return math.Pow(10, db/20)
}

// Deg2Rad converts degrees to radians.
func Deg2Rad(deg float64) float64 { return deg * math.Pi / 180 }

// Rad2Deg converts radians to degrees.
func Rad2Deg(rad float64) float64 { return rad * 180 / math.Pi }

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Lerp linearly interpolates between a and b by t in [0,1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// InterpTable performs piecewise-linear interpolation of y(x) over sorted
// sample points xs/ys. x outside the range clamps to the end values.
// xs must be strictly increasing and the slices equal length; the function
// panics otherwise because a malformed table is a programming error.
func InterpTable(xs, ys []float64, x float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		panic("units: InterpTable requires equal-length non-empty tables")
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[len(xs)-1] {
		return ys[len(ys)-1]
	}
	// Binary search for the bracketing interval.
	lo, hi := 0, len(xs)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	t := (x - xs[lo]) / (xs[hi] - xs[lo])
	return Lerp(ys[lo], ys[hi], t)
}
