// Package cfg builds intraprocedural control-flow graphs over go/ast
// function bodies and provides a generic forward dataflow solver
// (solve.go). It is the substrate for the path-sensitive ecolint
// analyzers: locksafety's early-return lock-leak check and anything
// else that needs "on every path" / "on some path" reasoning rather
// than a flat AST walk.
//
// The graph is statement-level: each Block holds the statements (and
// branch-condition expressions) that execute unconditionally once the
// block is entered, in execution order. Every function has a single
// synthetic Exit block; each return statement and the fall-off-the-end
// path gets an edge to it. Calls that provably never return — panic,
// os.Exit, log.Fatal*, runtime.Goexit, (*testing.T).Fatal* — terminate
// their block with no successors, so "lock held at Exit" analyses do
// not misfire on crash paths. The never-returns set is matched
// syntactically (identifier / selector name), deliberately: the package
// depends only on go/ast and go/token so it can be reused before or
// without type checking.
package cfg

import (
	"fmt"
	"go/ast"
	"strings"
)

// A Block is a maximal run of nodes with no internal control transfer.
type Block struct {
	// Index is the block's position in Graph.Blocks, stable across runs
	// for a given function body.
	Index int
	// Nodes holds the statements and control expressions of the block in
	// execution order. Branch conditions (if/for conditions, switch tags,
	// range expressions) appear as their ast.Expr / ast.Stmt node.
	Nodes []ast.Node
	// Succs are the possible control-flow successors.
	Succs []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first. It is never nil.
	Entry *Block
	// Exit is the synthetic sink for all returning paths: every return
	// statement and the fall-off-the-end path has an edge to it. Blocks
	// that end in a never-returning call have no successors at all.
	Exit *Block
	// Blocks lists every block, Entry first, Exit second.
	Blocks []*Block
}

// neverReturns are callee names (identifier or selector suffix) whose
// call terminates control flow. Matched syntactically.
var neverReturns = map[string]bool{
	"panic":   true, // builtin
	"Exit":    true, // os.Exit
	"Goexit":  true, // runtime.Goexit
	"Fatal":   true, // log.Fatal, (*testing.T).Fatal
	"Fatalf":  true, // log.Fatalf, (*testing.T).Fatalf
	"Fatalln": true, // log.Fatalln
	"FailNow": true, // (*testing.T).FailNow
	"SkipNow": true, // (*testing.T).SkipNow
	"Skip":    true, // (*testing.T).Skip
	"Skipf":   true, // (*testing.T).Skipf
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g, gotos: make(map[string]*Block)}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	b.jump(g.Exit) // fall off the end
	return g
}

// builder carries the under-construction graph and the lexical
// break/continue/fallthrough context.
type builder struct {
	g   *Graph
	cur *Block // nil after a terminator; revived lazily for dead code

	// breaks and continues are stacks of enclosing targets; an empty
	// label matches the innermost frame.
	breaks    []branchTarget
	continues []branchTarget
	// fallthroughTo is the body block of the next case clause while a
	// switch case body is being built.
	fallthroughTo *Block
	// gotos maps label name -> its (possibly forward-declared) block.
	gotos map[string]*Block
	// pendingLabel is the label attached to the next loop/switch/select
	// statement, consumed when its break/continue frames are pushed.
	pendingLabel string
}

type branchTarget struct {
	label  string
	target *Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

// add appends a node to the current block, starting an unreachable
// fresh block if the previous statement terminated control flow.
func (b *builder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// connect adds an edge from src to dst; nil src (terminated path) is a
// no-op.
func (b *builder) connect(src, dst *Block) {
	if src == nil {
		return
	}
	src.Succs = append(src.Succs, dst)
}

// jump ends the current block with an edge to target.
func (b *builder) jump(target *Block) {
	b.connect(b.cur, target)
	b.cur = nil
}

// startBlock makes a fresh block the current one without connecting it.
func (b *builder) startBlock() *Block {
	blk := b.newBlock()
	b.cur = blk
	return blk
}

// labelBlock returns (creating on demand) the block a goto/label name
// resolves to.
func (b *builder) labelBlock(name string) *Block {
	blk, ok := b.gotos[name]
	if !ok {
		blk = b.newBlock()
		b.gotos[name] = blk
	}
	return blk
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a breakable construct.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) popBreak()    { b.breaks = b.breaks[:len(b.breaks)-1] }
func (b *builder) popContinue() { b.continues = b.continues[:len(b.continues)-1] }

func findTarget(stack []branchTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if label == "" || stack[i].label == label {
			return stack[i].target
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label's block is a join point so that goto can target it
		// from anywhere in the function.
		blk := b.labelBlock(s.Label.Name)
		b.jump(blk)
		b.cur = blk
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		done := b.newBlock()
		b.startBlock()
		b.connect(cond, b.cur)
		b.stmt(s.Body)
		b.jump(done)
		if s.Else != nil {
			b.startBlock()
			b.connect(cond, b.cur)
			b.stmt(s.Else)
			b.jump(done)
		} else {
			b.connect(cond, done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.jump(head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		head = b.cur // add may have revived a dead block
		done := b.newBlock()
		if s.Cond != nil {
			b.connect(head, done)
		}
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.breaks = append(b.breaks, branchTarget{label, done})
		b.continues = append(b.continues, branchTarget{label, post})
		body := b.startBlock()
		b.connect(head, body)
		b.stmt(s.Body)
		b.jump(post)
		if s.Post != nil {
			b.cur = post
			b.add(s.Post)
			b.jump(head)
		}
		b.popBreak()
		b.popContinue()
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.add(s) // the range expression + per-iteration assignment
		b.jump(head)
		done := b.newBlock()
		b.connect(head, done) // range may be empty / exhausted
		b.breaks = append(b.breaks, branchTarget{label, done})
		b.continues = append(b.continues, branchTarget{label, head})
		body := b.startBlock()
		b.connect(head, body)
		b.stmt(s.Body)
		b.jump(head)
		b.popBreak()
		b.popContinue()
		b.cur = done

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		label := b.takeLabel()
		sel := b.cur
		if sel == nil {
			sel = b.newBlock()
			b.cur = sel
		}
		done := b.newBlock()
		b.breaks = append(b.breaks, branchTarget{label, done})
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			blk := b.startBlock()
			b.connect(sel, blk)
			if clause.Comm != nil {
				b.add(clause.Comm)
			}
			b.stmtList(clause.Body)
			b.jump(done)
		}
		b.popBreak()
		b.cur = done

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok && callNeverReturns(call) {
			b.cur = nil
		}

	default:
		// Plain statements: declarations, assignments, sends, inc/dec,
		// defer, go. None transfer control.
		b.add(s)
	}
}

// switchStmt builds expression and type switches; exactly one of tag /
// assign is non-nil (both may be nil for a bare switch).
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	label := b.takeLabel()
	if init != nil {
		b.add(init)
	}
	if tag != nil {
		b.add(tag)
	}
	if assign != nil {
		b.add(assign)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	done := b.newBlock()
	b.breaks = append(b.breaks, branchTarget{label, done})

	// Pre-create case body blocks so fallthrough can target the next one.
	clauses := make([]*ast.CaseClause, 0, len(body.List))
	blocks := make([]*Block, 0, len(body.List))
	hasDefault := false
	for _, cc := range body.List {
		clause := cc.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		clauses = append(clauses, clause)
		blocks = append(blocks, b.newBlock())
	}
	for i, clause := range clauses {
		blk := blocks[i]
		b.connect(head, blk)
		b.cur = blk
		savedFT := b.fallthroughTo
		if i+1 < len(blocks) {
			b.fallthroughTo = blocks[i+1]
		} else {
			b.fallthroughTo = done
		}
		b.stmtList(clause.Body)
		b.fallthroughTo = savedFT
		b.jump(done)
	}
	if !hasDefault {
		b.connect(head, done)
	}
	b.popBreak()
	b.cur = done
}

func (b *builder) branch(s *ast.BranchStmt) {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		if t := findTarget(b.breaks, label); t != nil {
			b.jump(t)
			return
		}
	case "continue":
		if t := findTarget(b.continues, label); t != nil {
			b.jump(t)
			return
		}
	case "goto":
		if s.Label != nil {
			b.jump(b.labelBlock(s.Label.Name))
			return
		}
	case "fallthrough":
		if b.fallthroughTo != nil {
			b.jump(b.fallthroughTo)
			return
		}
	}
	// Malformed branch (e.g. break outside a loop in a fixture): drop
	// the edge rather than panic.
	b.add(s)
	b.cur = nil
}

// callNeverReturns reports whether the call's callee name is in the
// never-returns set (panic, os.Exit, log.Fatal*, t.Fatal*...).
func callNeverReturns(call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return neverReturns[fn.Name]
	case *ast.SelectorExpr:
		return neverReturns[fn.Sel.Name]
	}
	return false
}

// Reachable returns the set of blocks reachable from Entry, in a
// deterministic preorder.
func (g *Graph) Reachable() []*Block {
	seen := make([]bool, len(g.Blocks))
	var order []*Block
	var visit func(*Block)
	visit = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		order = append(order, b)
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Entry)
	return order
}

// String renders the graph compactly for tests and debugging:
// one "bN[: nodes] -> succs" line per reachable block.
func (g *Graph) String() string {
	var sb strings.Builder
	for _, b := range g.Reachable() {
		fmt.Fprintf(&sb, "b%d", b.Index)
		if len(b.Nodes) > 0 {
			sb.WriteString(":")
			for _, n := range b.Nodes {
				fmt.Fprintf(&sb, " %s", nodeLabel(n))
			}
		}
		sb.WriteString(" ->")
		if len(b.Succs) == 0 {
			sb.WriteString(" halt")
		}
		for _, s := range b.Succs {
			fmt.Fprintf(&sb, " b%d", s.Index)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeLabel(n ast.Node) string {
	switch n := n.(type) {
	case *ast.ReturnStmt:
		return "return"
	case *ast.RangeStmt:
		return "range"
	case *ast.ExprStmt:
		if call, ok := n.X.(*ast.CallExpr); ok {
			switch fn := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fn.Name + "()"
			case *ast.SelectorExpr:
				return fn.Sel.Name + "()"
			}
		}
		return "expr"
	case *ast.AssignStmt:
		return "assign"
	case *ast.DeferStmt:
		return "defer"
	case *ast.Ident:
		return n.Name
	case *ast.BinaryExpr, *ast.UnaryExpr, *ast.CallExpr:
		return "cond"
	case *ast.DeclStmt:
		return "decl"
	case *ast.IncDecStmt:
		return "incdec"
	case *ast.BranchStmt:
		return n.Tok.String()
	case *ast.TypeSwitchStmt:
		return "typeswitch"
	}
	return fmt.Sprintf("%T", n)
}
