package cfg

// Flow describes a forward dataflow problem over a Graph for lattice
// values of type L. The solver owns every value it passes around;
// callbacks must treat their arguments as read-only and return fresh
// (or reused-but-owned) values:
//
//   - Entry produces the in-value of the entry block.
//   - Transfer computes a block's out-value from its in-value without
//     mutating the in-value.
//   - Join merges src into dst, returning the merged value and whether
//     dst changed; it may mutate and return dst but not src.
//   - Copy clones a value so that a successor's initial in-value does
//     not alias its predecessor's out-value.
type Flow[L any] struct {
	Entry    func() L
	Transfer func(b *Block, in L) L
	Join     func(dst, src L) (L, bool)
	Copy     func(L) L
}

// Result holds the fixpoint per reachable block. Blocks unreachable
// from Entry do not appear in either map.
type Result[L any] struct {
	In  map[*Block]L
	Out map[*Block]L
}

// Forward solves the dataflow problem with a deterministic worklist
// iteration to a fixpoint. Visit order is derived from block indices,
// which are stable for a given function body, so the result (and any
// diagnostics derived from it) is identical across runs.
func Forward[L any](g *Graph, f Flow[L]) Result[L] {
	res := Result[L]{In: make(map[*Block]L), Out: make(map[*Block]L)}
	res.In[g.Entry] = f.Entry()

	work := []*Block{g.Entry}
	queued := make(map[*Block]bool)
	queued[g.Entry] = true
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		out := f.Transfer(b, res.In[b])
		res.Out[b] = out
		for _, s := range b.Succs {
			var changed bool
			if cur, ok := res.In[s]; ok {
				res.In[s], changed = f.Join(cur, out)
			} else {
				res.In[s] = f.Copy(out)
				changed = true
			}
			if changed && !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
	return res
}
