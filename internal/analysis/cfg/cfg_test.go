package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseBody parses src as the body of a single function declaration.
func parseBody(t *testing.T, body string) *ast.BlockStmt {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

func TestGraphShapes(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{
			name: "straightline",
			body: "x := 1\n_ = x",
			want: "b0: assign assign -> b1\nb1 -> halt\n",
		},
		{
			name: "if-early-return",
			body: "x := 1\nif x > 0 {\nreturn\n}\n_ = x",
			want: "b0: assign cond -> b3 b2\nb3: return -> b1\nb1 -> halt\nb2: assign -> b1\n",
		},
		{
			name: "if-else",
			body: "if c() {\na()\n} else {\nb()\n}\nd()",
			want: "b0: cond -> b3 b4\nb3: a() -> b2\nb2: d() -> b1\nb1 -> halt\nb4: b() -> b2\n",
		},
		{
			name: "for-cond",
			body: "for i := 0; i < 3; i++ {\na()\n}\nb()",
			want: "b0: assign -> b2\nb2: cond -> b3 b5\nb3: b() -> b1\nb1 -> halt\nb5: a() -> b4\nb4: incdec -> b2\n",
		},
		{
			name: "for-break-continue",
			body: "for {\nif c() {\nbreak\n}\nif d() {\ncontinue\n}\na()\n}\nb()",
			want: "b0 -> b2\nb2 -> b4\nb4: cond -> b6 b5\nb6 -> b3\nb3: b() -> b1\nb1 -> halt\nb5: cond -> b8 b7\nb8 -> b2\nb7: a() -> b2\n",
		},
		{
			name: "range-map",
			body: "m := map[int]int{}\nfor k := range m {\n_ = k\n}\na()",
			want: "b0: assign range -> b2\nb2 -> b3 b4\nb3: a() -> b1\nb1 -> halt\nb4: assign -> b2\n",
		},
		{
			name: "switch-fallthrough",
			body: "switch x() {\ncase 1:\na()\nfallthrough\ncase 2:\nb()\ndefault:\nc()\n}\nd()",
			want: "b0: cond -> b3 b4 b5\nb3: a() -> b4\nb4: b() -> b2\nb2: d() -> b1\nb1 -> halt\nb5: c() -> b2\n",
		},
		{
			name: "panic-terminates",
			body: "if c() {\npanic(\"no\")\n}\na()",
			want: "b0: cond -> b3 b2\nb3: panic() -> halt\nb2: a() -> b1\nb1 -> halt\n",
		},
		{
			name: "goto",
			body: "a()\ngoto L\nb()\nL:\nc()",
			want: "b0: a() -> b2\nb2: c() -> b1\nb1 -> halt\n",
		},
		{
			name: "select",
			body: "select {\ncase <-ch():\na()\ndefault:\nb()\n}\nc()",
			want: "b0 -> b3 b4\nb3: expr a() -> b2\nb2: c() -> b1\nb1 -> halt\nb4: b() -> b2\n",
		},
		{
			name: "labeled-break",
			body: "L:\nfor {\nfor {\nbreak L\n}\n}\na()",
			want: "b0 -> b2\nb2 -> b3\nb3 -> b5\nb5 -> b6\nb6 -> b8\nb8 -> b4\nb4: a() -> b1\nb1 -> halt\n",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := New(parseBody(t, c.body))
			if got := g.String(); got != c.want {
				t.Errorf("graph mismatch\n got:\n%s want:\n%s", got, c.want)
			}
		})
	}
}

// TestForwardReachingCalls checks the solver on a simple gen-only
// problem: which call names can have executed by each block's exit.
func TestForwardReachingCalls(t *testing.T) {
	body := `
a()
if c() {
	b()
	return
}
d()`
	g := New(parseBody(t, body))
	flow := Flow[map[string]bool]{
		Entry: func() map[string]bool { return map[string]bool{} },
		Copy: func(m map[string]bool) map[string]bool {
			out := make(map[string]bool, len(m))
			for k := range m {
				out[k] = true
			}
			return out
		},
		Join: func(dst, src map[string]bool) (map[string]bool, bool) {
			changed := false
			for k := range src {
				if !dst[k] {
					dst[k] = true
					changed = true
				}
			}
			return dst, changed
		},
		Transfer: func(b *Block, in map[string]bool) map[string]bool {
			out := make(map[string]bool, len(in))
			for k := range in {
				out[k] = true
			}
			for _, n := range b.Nodes {
				ast.Inspect(n, func(x ast.Node) bool {
					if call, ok := x.(*ast.CallExpr); ok {
						if id, ok := call.Fun.(*ast.Ident); ok {
							out[id.Name] = true
						}
					}
					return true
				})
			}
			return out
		},
	}
	res := Forward(g, flow)
	atExit := res.In[g.Exit]
	keys := make([]string, 0, len(atExit))
	for k := range atExit {
		keys = append(keys, k)
	}
	// The exit joins the early-return path {a,c,b} and the fall-through
	// path {a,c,d}: the union must contain all four calls.
	for _, want := range []string{"a", "b", "c", "d"} {
		if !atExit[want] {
			t.Errorf("call %q not reaching exit; got %v", want, keys)
		}
	}
	// And on the early-return path specifically, d must NOT have run.
	var returnBlock *Block
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.ReturnStmt); ok {
				returnBlock = b
			}
		}
	}
	if returnBlock == nil {
		t.Fatal("no return block found")
	}
	if out := res.Out[returnBlock]; out["d"] || !out["b"] {
		t.Errorf("early-return path saw wrong calls: %v", out)
	}
}

func TestUnreachableNotVisited(t *testing.T) {
	g := New(parseBody(t, "return\na()"))
	for _, b := range g.Reachable() {
		for _, n := range b.Nodes {
			if s := nodeLabel(n); s == "a()" {
				t.Errorf("dead code after return should be unreachable, found %s", s)
			}
		}
	}
	if !strings.Contains(g.String(), "return") {
		t.Errorf("return missing from graph:\n%s", g.String())
	}
}

func TestExitHasNoSuccessors(t *testing.T) {
	g := New(parseBody(t, "if c() {\nreturn\n}"))
	if len(g.Exit.Succs) != 0 {
		t.Errorf("exit block must be a sink, has succs %v", g.Exit.Succs)
	}
	if fmt.Sprintf("b%d", g.Exit.Index) != "b1" {
		t.Errorf("exit should be the second block, got b%d", g.Exit.Index)
	}
}
