package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a piece of information an analyzer derives about a
// package-level object (function, method, var, type) and exports for
// passes over *dependent* packages to consume. The driver analyzes
// packages in dependency order, so by the time a pass asks for a fact
// on an imported object, the defining package's pass has already run
// (or its facts were restored from the on-disk cache).
//
// Facts must be JSON-serialisable: they round-trip through the result
// cache, and the fact table stores them in encoded form so that a
// cached and a freshly-computed run are observationally identical.
type Fact interface {
	// AFact is a marker method; it has no behaviour.
	AFact()
}

// factKey names one fact: the defining package, the object within it,
// and the fact's Go type name (one object may carry facts from several
// analyzers).
type factKey struct {
	pkg  string
	obj  string
	typ  string
}

// Facts is the cross-package fact table shared by every pass of one
// driver run. It is safe for concurrent use: the parallel driver
// guarantees dependency order between writers (defining package) and
// readers (dependent packages), and duplicate exports of the same key
// keep the first value, so the table's observable content does not
// depend on goroutine interleaving.
type Facts struct {
	mu sync.RWMutex
	m  map[factKey]json.RawMessage
}

// NewFacts returns an empty fact table.
func NewFacts() *Facts {
	return &Facts{m: make(map[factKey]json.RawMessage)}
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return t.Name()
}

// ObjectKey returns the stable intra-package name for a package-level
// object: "F" for a function or var, "T.M" for a method (pointer and
// value receivers collapse to the same key). Objects that cannot cross
// package boundaries — locals, closures — have no key.
func ObjectKey(o types.Object) (string, bool) {
	if o == nil || o.Pkg() == nil {
		return "", false
	}
	if fn, ok := o.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return "", false
		}
		if recv := sig.Recv(); recv != nil {
			t := recv.Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
		if o.Parent() != o.Pkg().Scope() {
			return "", false // function literal bound to a local
		}
		return fn.Name(), true
	}
	if o.Parent() == o.Pkg().Scope() {
		return o.Name(), true
	}
	return "", false
}

// export records a fact for (pkg, objKey). First write wins, which
// keeps the table deterministic when the same package is analyzed
// twice (once for facts, once with its test files merged in).
func (t *Facts) export(pkg, obj string, f Fact) error {
	data, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("analysis: encoding fact %T for %s.%s: %w", f, pkg, obj, err)
	}
	k := factKey{pkg: pkg, obj: obj, typ: factTypeName(f)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[k]; !ok {
		t.m[k] = data
	}
	return nil
}

// lookup decodes the fact for (pkg, objKey) into f, reporting whether
// one was present.
func (t *Facts) lookup(pkg, obj string, f Fact) bool {
	k := factKey{pkg: pkg, obj: obj, typ: factTypeName(f)}
	t.mu.RLock()
	data, ok := t.m[k]
	t.mu.RUnlock()
	if !ok {
		return false
	}
	return json.Unmarshal(data, f) == nil
}

// A SerializedFact is the cache representation of one exported fact.
type SerializedFact struct {
	Obj  string          `json:"obj"`
	Type string          `json:"type"`
	Data json.RawMessage `json:"data"`
}

// PackageFacts snapshots every fact exported by pkg, sorted for
// byte-stable cache files.
func (t *Facts) PackageFacts(pkg string) []SerializedFact {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []SerializedFact
	for k, data := range t.m {
		if k.pkg == pkg {
			out = append(out, SerializedFact{Obj: k.obj, Type: k.typ, Data: data})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Obj != out[j].Obj {
			return out[i].Obj < out[j].Obj
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// AddSerialized restores cached facts for pkg into the table.
func (t *Facts) AddSerialized(pkg string, facts []SerializedFact) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sf := range facts {
		k := factKey{pkg: pkg, obj: sf.Obj, typ: sf.Type}
		if _, ok := t.m[k]; !ok {
			t.m[k] = sf.Data
		}
	}
}

// ExportObjectFact publishes a fact about obj (which must be a
// package-level object of the pass's own package) for dependent
// packages. Facts about locals are silently dropped — they cannot be
// named across package boundaries.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return
	}
	// Facts are filed under the pass's own package path so that the
	// test-augmented variant of a package (checked under the same import
	// path) lands on the same keys as the plain variant.
	if err := p.Facts.export(p.Pkg.Path(), key, f); err != nil {
		p.report(Diagnostic{Analyzer: p.Analyzer.Name, Message: err.Error()})
	}
}

// ImportObjectFact fills f with the fact of f's type previously
// exported about obj, reporting whether one exists. It works for
// objects of the current package and of its (transitive) dependencies.
func (p *Pass) ImportObjectFact(obj types.Object, f Fact) bool {
	if p.Facts == nil || obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	return p.Facts.lookup(obj.Pkg().Path(), key, f)
}
