package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects the pass's package and calls
// pass.Reportf for every finding.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //ecolint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer catches and
	// why it matters for SHM data integrity.
	Doc string
	// Version participates in the on-disk result-cache key: bump it
	// whenever the analyzer's behaviour changes so stale cached
	// diagnostics are invalidated. An empty version reads as "1".
	Version string
	// UsesFacts marks analyzers that export or import cross-package
	// facts; only these run in facts-only passes over dependency
	// packages.
	UsesFacts bool
	// Run performs the check.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the run-wide cross-package fact table (see facts.go).
	// Nil when the driver runs without fact support.
	Facts *Facts
	// FactsOnly suppresses diagnostics: the pass runs purely to export
	// facts for dependent packages (used for dependency packages outside
	// the requested patterns, and for the plain variant of a package
	// whose diagnostics come from its test-augmented variant).
	FactsOnly bool
	// report receives raw (pre-suppression) diagnostics.
	report func(Diagnostic)
}

// Reportf records a finding at pos. Facts-only passes drop it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.FactsOnly {
		return
	}
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// IgnoreDirective is the comment form that suppresses a finding:
//
//	//ecolint:ignore <analyzer> <reason>
//
// placed on the offending line or on the line immediately above it. The
// reason is mandatory — undocumented suppressions are themselves findings.
const IgnoreDirective = "//ecolint:ignore"

type ignoreKey struct {
	file string
	line int
}

type ignoreEntry struct {
	analyzer  string
	hasReason bool
	pos       token.Position
}

// collectIgnores scans a package's comments for ignore directives, keyed by
// the line they apply to.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[ignoreKey][]ignoreEntry {
	ignores := make(map[ignoreKey][]ignoreEntry)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				entry := ignoreEntry{analyzer: fields[0], hasReason: len(fields) > 1, pos: pos}
				// The directive covers its own line and the line below, so
				// it works both inline and as a standalone comment above
				// the finding.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := ignoreKey{file: pos.Filename, line: line}
					ignores[k] = append(ignores[k], entry)
				}
			}
		}
	}
	return ignores
}

// analyzeUnit applies the analyzers to one type-checked unit (a plain
// package, a package merged with its in-package test files, or an
// external _test package), applying ignore directives, and returns the
// surviving diagnostics unsorted. When factsOnly is set, only
// fact-producing analyzers run and nothing is reported.
func analyzeUnit(pkg *Package, analyzers []*Analyzer, facts *Facts, factsOnly bool) []Diagnostic {
	var diags []Diagnostic
	ignores := collectIgnores(pkg.Fset, pkg.Files)
	if !factsOnly {
		seenBadDirective := make(map[token.Position]bool)
		for k, entries := range ignores {
			for _, e := range entries {
				if !e.hasReason && !seenBadDirective[e.pos] && k.line == e.pos.Line {
					seenBadDirective[e.pos] = true
					diags = append(diags, Diagnostic{
						Pos:      e.pos,
						Analyzer: "ecolint",
						Message:  fmt.Sprintf("ignore directive for %q is missing a reason (//ecolint:ignore <analyzer> <reason>)", e.analyzer),
					})
				}
			}
		}
	}
	for _, a := range analyzers {
		if factsOnly && !a.UsesFacts {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			Facts:     facts,
			FactsOnly: factsOnly,
		}
		pass.report = func(d Diagnostic) {
			for _, e := range ignores[ignoreKey{file: d.Pos.Filename, line: d.Pos.Line}] {
				if e.hasReason && (e.analyzer == d.Analyzer || e.analyzer == "all") {
					return
				}
			}
			diags = append(diags, d)
		}
		a.Run(pass)
	}
	return diags
}

// sortDiagnostics orders diagnostics by file, line, analyzer and
// message — a total order, so sequential and parallel drivers (and
// cached and fresh results) produce byte-identical output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Analyzer != diags[j].Analyzer {
			return diags[i].Analyzer < diags[j].Analyzer
		}
		return diags[i].Message < diags[j].Message
	})
}

// RunAnalyzers applies every analyzer to every package in order —
// dependencies must precede dependents for cross-package facts to
// propagate — and returns the surviving diagnostics sorted by position.
// Findings matched by a well-formed ignore directive are dropped;
// ignore directives without a reason are reported as findings
// themselves so suppressions stay auditable.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	facts := NewFacts()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, analyzeUnit(pkg, analyzers, facts, false)...)
	}
	sortDiagnostics(diags)
	return diags
}

// All returns the full EcoCapsule analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		UnitSafety,
		LockSafety,
		LeakCheck,
		ErrCheckLite,
		FloatCmp,
		MetricName,
		Determinism,
		GuardedBy,
		ClosureCapture,
		AtomicMix,
		DimCheck,
		HotAlloc,
	}
}
