package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one named check. Run inspects the pass's package and calls
// pass.Reportf for every finding.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //ecolint:ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer catches and
	// why it matters for SHM data integrity.
	Doc string
	// Run performs the check.
	Run func(*Pass)
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// report receives raw (pre-suppression) diagnostics.
	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// IgnoreDirective is the comment form that suppresses a finding:
//
//	//ecolint:ignore <analyzer> <reason>
//
// placed on the offending line or on the line immediately above it. The
// reason is mandatory — undocumented suppressions are themselves findings.
const IgnoreDirective = "//ecolint:ignore"

type ignoreKey struct {
	file string
	line int
}

type ignoreEntry struct {
	analyzer  string
	hasReason bool
	pos       token.Position
}

// collectIgnores scans a package's comments for ignore directives, keyed by
// the line they apply to.
func collectIgnores(fset *token.FileSet, files []*ast.File) map[ignoreKey][]ignoreEntry {
	ignores := make(map[ignoreKey][]ignoreEntry)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, IgnoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, IgnoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				entry := ignoreEntry{analyzer: fields[0], hasReason: len(fields) > 1, pos: pos}
				// The directive covers its own line and the line below, so
				// it works both inline and as a standalone comment above
				// the finding.
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := ignoreKey{file: pos.Filename, line: line}
					ignores[k] = append(ignores[k], entry)
				}
			}
		}
	}
	return ignores
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics sorted by position. Findings matched by a
// well-formed ignore directive are dropped; ignore directives without a
// reason are reported as findings themselves so suppressions stay auditable.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	seenBadDirective := make(map[token.Position]bool)
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg.Fset, pkg.Files)
		for k, entries := range ignores {
			for _, e := range entries {
				if !e.hasReason && !seenBadDirective[e.pos] && k.line == e.pos.Line {
					seenBadDirective[e.pos] = true
					diags = append(diags, Diagnostic{
						Pos:      e.pos,
						Analyzer: "ecolint",
						Message:  fmt.Sprintf("ignore directive for %q is missing a reason (//ecolint:ignore <analyzer> <reason>)", e.analyzer),
					})
				}
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				for _, e := range ignores[ignoreKey{file: d.Pos.Filename, line: d.Pos.Line}] {
					if e.hasReason && (e.analyzer == d.Analyzer || e.analyzer == "all") {
						return
					}
				}
				diags = append(diags, d)
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// All returns the full EcoCapsule analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		UnitSafety,
		LockSafety,
		LeakCheck,
		ErrCheckLite,
		FloatCmp,
		MetricName,
	}
}
