// Fixture for the leakcheck analyzer: the package base name "reader" puts
// it in the analyzer's long-lived-server set.
package reader

import "context"

func spin() {
	for {
	}
}

func watch(ctx context.Context) { <-ctx.Done() }

func launch(ctx context.Context, stop chan struct{}) {
	go spin() // want `goroutine has no stop signal`

	go func() { // want `goroutine has no stop signal`
		for {
		}
	}()

	go func() { // ok: selects on the stop channel
		for {
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	go watch(ctx) // ok: context passed as an argument

	go func() { // ok: captures ctx
		<-ctx.Done()
	}()
}
