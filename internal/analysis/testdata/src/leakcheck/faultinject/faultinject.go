// Fixture for the leakcheck analyzer: the package base name "faultinject"
// is in the long-lived-server set because the fault layer spawns flapping
// and retry goroutines that must die with the scenario.
package faultinject

import "time"

// flapForever is the classic leak: a sleep-polling goroutine with no way
// out (note a time.Ticker would pass the check — its C field is a channel).
func flapForever(interval time.Duration, fn func()) {
	go func() { // want `goroutine has no stop signal`
		for {
			time.Sleep(interval)
			fn()
		}
	}()
}

// flap is the stoppable version the analyzer accepts.
func flap(stop <-chan struct{}, interval time.Duration, fn func()) {
	go func() { // ok: selects on the stop channel
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				fn()
			}
		}
	}()
}

// retryLoop without a signal argument leaks across reconnect storms.
func retryLoop(redial func() error) {
	go retryForever(redial) // want `goroutine has no stop signal`
}

func retryForever(redial func() error) {
	for {
		if redial() == nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// retryUntil threads a done channel through the callee, which the analyzer
// resolves by inspecting the same-package body.
func retryUntil(done <-chan struct{}, redial func() error) {
	go retryWithSignal(done, redial) // ok: channel passed as an argument
}

func retryWithSignal(done <-chan struct{}, redial func() error) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if redial() == nil {
			return
		}
	}
}
