// Package other is outside the leakcheck server-package set, so nothing
// here is flagged.
package other

func spin() {
	for {
	}
}

func launch() {
	go spin() // ok: leakcheck only covers reader/shmwire/node/dashboard
}
