// Package closurecapture is the golden fixture for the async-closure
// auditor: goroutine and conc.For bodies must not capture loop
// variables (pass them as arguments) and must not mutate captured
// shared state with no lock held.
package closurecapture

import (
	"sync"

	"closurecapture/internal/conc"
)

func use(...interface{}) {}

// --- positive cases: loop-variable capture --------------------------

// rangeCapture leaks the range value into the goroutine.
func rangeCapture(xs []int) {
	for _, v := range xs {
		go func() {
			use(v) // want `goroutine captures loop variable v`
		}()
	}
}

// indexCapture leaks a 3-clause loop counter.
func indexCapture(n int) {
	for i := 0; i < n; i++ {
		go func() {
			use(i) // want `goroutine captures loop variable i`
		}()
	}
}

// rangeKeyCapture leaks a map iteration key.
func rangeKeyCapture(m map[string]int) {
	for k := range m {
		go func() {
			use(k) // want `goroutine captures loop variable k`
		}()
	}
}

// concForLoopCapture launches conc.For bodies from inside a loop that
// the body peeks into.
func concForLoopCapture(rows [][]float64) {
	for r, row := range rows {
		conc.For(len(row), func(i int) {
			row[i] *= 2 // want `conc\.For body captures loop variable row`
			use(r)      // want `conc\.For body captures loop variable r`
		})
	}
}

// --- positive cases: unsynchronised mutation ------------------------

// bareCounter increments a captured counter with no lock.
func bareCounter() int {
	n := 0
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		n++ // want `goroutine mutates captured variable n with no lock held`
	}()
	wg.Wait()
	return n
}

// errSmuggle assigns a captured error slot.
func errSmuggle(f func() error) error {
	var err error
	done := make(chan struct{})
	go func() {
		err = f() // want `goroutine mutates captured variable err with no lock held`
		close(done)
	}()
	<-done
	return err
}

// mapWrite stores into a captured map: faults at runtime if another
// goroutine touches it, lock or not on the other side.
func mapWrite(m map[string]int) {
	go func() {
		m["k"] = 1 // want `goroutine writes captured map m without synchronization`
	}()
}

// mapDelete deletes from a captured map.
func mapDelete(m map[string]int) {
	go func() {
		delete(m, "k") // want `goroutine writes captured map m without synchronization`
	}()
}

// sharedAppend grows a shared slice from conc.For workers — the classic
// nondeterministic append race the package comment forbids.
func sharedAppend(n int) []int {
	var out []int
	conc.For(n, func(i int) {
		out = append(out, i) // want `conc\.For body mutates captured variable out with no lock held`
	})
	return out
}

// capturedIndex writes through an index that is NOT closure-local, so
// slots are not provably disjoint.
func capturedIndex(out []int, j int) {
	go func() {
		out[j] = 1 // want `goroutine mutates captured variable out with no lock held`
	}()
}

// fieldWrite mutates a field of a captured struct pointer bare.
type state struct {
	mu    sync.Mutex
	count int
}

func fieldWrite(s *state) {
	go func() {
		s.count = 1 // want `goroutine writes field s\.count of captured s with no lock held`
	}()
}

// mapByIndex writes disjoint keys of a shared map — still a runtime
// fault, unlike disjoint slice slots.
func mapByIndex(m map[int]int, n int) {
	conc.For(n, func(i int) {
		m[i] = i // want `conc\.For body writes captured map m without synchronization`
	})
}

// --- negative cases -------------------------------------------------

// passAsArg rebinds the loop value through the parameter list.
func passAsArg(xs []int) {
	for _, v := range xs {
		go func(v int) {
			use(v) // ok: parameter shadows the loop variable
		}(v)
	}
}

// slotWrites is the sanctioned conc.For pattern: one result slot per
// index, index owned by the closure.
func slotWrites(xs []int) []int {
	out := make([]int, len(xs))
	conc.For(len(xs), func(i int) {
		out[i] = xs[i] * 2 // ok: per-index slot, closure-local index
	})
	return out
}

// underLock mutates shared state while provably holding a mutex.
func underLock(s *state) {
	go func() {
		s.mu.Lock()
		s.count++ // ok: lock held at the write
		s.mu.Unlock()
	}()
}

// localState keeps all mutation inside the closure.
func localState(ch chan<- int) {
	go func() {
		sum := 0
		for i := 0; i < 10; i++ {
			sum += i // ok: sum is closure-local
		}
		ch <- sum
	}()
}

// readOnly captures freely but never writes.
func readOnly(cfg struct{ Name string }, ch chan<- string) {
	go func() {
		ch <- cfg.Name // ok: capture without mutation
	}()
}

// suppressed is the audited escape hatch: single writer, joined before
// any read.
func suppressed() int {
	n := 0
	done := make(chan struct{})
	go func() {
		//ecolint:ignore closurecapture single writer, reader blocks on done before loading
		n = 42 // ok: suppressed with a reason
		close(done)
	}()
	<-done
	return n
}
