// Package conc is a fixture stub mirroring the repository's bounded
// fork-join primitive; the closurecapture analyzer recognises For by
// its "internal/conc" import-path suffix.
package conc

// For runs fn(i) for every i in [0, n) on worker goroutines.
func For(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}
