// Fixture for the metricname analyzer covering the observability families
// added with the load harness: latency histograms and flight-recorder
// counters. The package base name is "shmload", so every constant metric
// name must start with ecocapsule_shmload_.
package shmload

import "metricname/internal/telemetry"

var (
	latency = telemetry.NewHistogram("ecocapsule_shmload_latency_seconds", "ok: quantile histogram",
		[]float64{0.001, 0.01, 0.1})
	rounds = telemetry.NewCounter("ecocapsule_shmload_rounds_total", "ok: convention followed")
	stolen = telemetry.NewCounter("ecocapsule_shmwire_traced_frames_total", "another package's family") // want `metric name "ecocapsule_shmwire_traced_frames_total" claims package "shmwire"; metrics defined here must use ecocapsule_shmload_<name>`
	dumps  = telemetry.NewCounterVec("ecocapsule_telemetry_flight_dumps_total", "telemetry's family", "reason") // want `metric name "ecocapsule_telemetry_flight_dumps_total" claims package "telemetry"; metrics defined here must use ecocapsule_shmload_<name>`
	p99    = telemetry.NewGauge("shmload_latency_p99_seconds", "no ecocapsule prefix") // want `metric name "shmload_latency_p99_seconds" does not match ecocapsule_<pkg>_<name>`
)
