// Fixture stand-in for ecocapsule/internal/telemetry.
package telemetry

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type CounterVec struct{}

type GaugeVec struct{}

type HistogramVec struct{}

type Registry struct{}

func Default() *Registry { return &Registry{} }

func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram { return &Histogram{} }

func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{}
}

func NewCounter(name, help string) *Counter { return &Counter{} }

func NewGauge(name, help string) *Gauge { return &Gauge{} }

func NewHistogram(name, help string, buckets []float64) *Histogram { return &Histogram{} }

func NewCounterVec(name, help string, labelNames ...string) *CounterVec { return &CounterVec{} }

func NewGaugeVec(name, help string, labelNames ...string) *GaugeVec { return &GaugeVec{} }

func NewHistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{}
}
