// Fixture for the metricname analyzer. The package base name is "widget",
// so every constant metric name must start with ecocapsule_widget_.
package widget

import "metricname/internal/telemetry"

var (
	spins = telemetry.NewCounter("ecocapsule_widget_spins_total", "ok: convention followed")
	depth = telemetry.NewGauge("widget_depth", "no prefix")                                     // want `metric name "widget_depth" does not match ecocapsule_<pkg>_<name>`
	other = telemetry.NewCounter("ecocapsule_reader_spins_total", "wrong package segment")      // want `metric name "ecocapsule_reader_spins_total" claims package "reader"; metrics defined here must use ecocapsule_widget_<name>`
	mixed = telemetry.NewCounterVec("ecocapsule_widget_Spins_total", "uppercase", "kind")       // want `metric name "ecocapsule_widget_Spins_total" does not match ecocapsule_<pkg>_<name>`
	hist  = telemetry.NewHistogram("ecocapsule_widget_depth_m", "ok: histogram", []float64{1})
)

func build(name string) {
	r := telemetry.Default()
	r.Counter("ecocapsule_widget_builds_total", "ok: registry method")
	r.Gauge("builds", "bare name") // want `metric name "builds" does not match ecocapsule_<pkg>_<name>`
	r.Histogram(name, "ok: dynamic names are not checked", nil)
	r.CounterVec("ecocapsule_fleet_builds_total", "wrong package via method", "kind") // want `metric name "ecocapsule_fleet_builds_total" claims package "fleet"`
}
