// Package cfg pins the CFG half of the locksafety analyzer: locks
// still held when control reaches a return. The value-copy half is
// pinned by the sibling fixture files.
package cfg

import "sync"

type store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// earlyReturnLeak is the bug this check exists for: the error path
// returns with mu held.
func (s *store) earlyReturnLeak(key string) int {
	s.mu.Lock()
	v, ok := s.data[key]
	if !ok {
		return -1 // want `s.mu.Lock\(\) locked at line \d+ is still held on this return path`
	}
	s.mu.Unlock()
	return v
}

// fallOffEndLeak never unlocks at all.
func (s *store) fallOffEndLeak(key string, v int) {
	s.mu.Lock()
	s.data[key] = v
} // want `s.mu.Lock\(\) locked at line \d+ is still held on this return path`

// readLockLeak leaks the read half of an RWMutex on the early path.
func (s *store) readLockLeak(key string) int {
	s.rw.RLock()
	if s.data == nil {
		return 0 // want `s.rw.RLock\(\) locked at line \d+ is still held on this return path`
	}
	v := s.data[key]
	s.rw.RUnlock()
	return v
}

// loopBreakLeak exits the loop (and then the function) still holding
// the lock taken in the last iteration.
func (s *store) loopBreakLeak(keys []string) int {
	total := 0
	for _, k := range keys {
		s.mu.Lock()
		v, ok := s.data[k]
		if !ok {
			break
		}
		total += v
		s.mu.Unlock()
	}
	return total // want `s.mu.Lock\(\) locked at line \d+ is still held on this return path`
}

// deferUnlock is the canonical safe form.
func (s *store) deferUnlock(key string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.data[key]
}

// deferInLiteral releases through a deferred closure.
func (s *store) deferInLiteral(key string) int {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.data[key]
}

// branchBalanced unlocks on every path by hand.
func (s *store) branchBalanced(key string) int {
	s.mu.Lock()
	if v, ok := s.data[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return -1
}

// panicPathHeld holds the lock into a panic — the process is dying, not
// leaking, so the check stays quiet.
func (s *store) panicPathHeld(key string) int {
	s.mu.Lock()
	v, ok := s.data[key]
	if !ok {
		panic("missing key: " + key)
	}
	s.mu.Unlock()
	return v
}

// lockStraddle is the double-checked upgrade pattern from the telemetry
// registry: read-lock probe, full-lock insert, all balanced.
func (s *store) lockStraddle(key string) int {
	s.rw.RLock()
	v, ok := s.data[key]
	s.rw.RUnlock()
	if ok {
		return v
	}
	s.rw.Lock()
	defer s.rw.Unlock()
	s.data[key] = 0
	return 0
}

// suppressedHandoff intentionally returns locked (caller unlocks); the
// reasoned directive documents the contract.
func (s *store) suppressedHandoff(key string) int {
	s.mu.Lock()
	//ecolint:ignore locksafety lock handoff: caller is contractually required to call unlockStore
	return s.data[key]
}

func (s *store) unlockStore() { s.mu.Unlock() }
