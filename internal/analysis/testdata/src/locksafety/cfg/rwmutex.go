package cfg

import "sync"

// The RWMutex half of the CFG leak check: the read and write halves are
// tracked as distinct locks, so an RUnlock does not pay off a Lock and
// vice versa.

type index struct {
	rw    sync.RWMutex
	byKey map[string]int
}

// earlyReturnRLockLeak returns on the miss path with the read half held.
func (ix *index) earlyReturnRLockLeak(key string) int {
	ix.rw.RLock()
	v, ok := ix.byKey[key]
	if !ok {
		return -1 // want `ix.rw.RLock\(\) locked at line \d+ is still held on this return path`
	}
	ix.rw.RUnlock()
	return v
}

// doubleEarlyReturn leaks on both of two early paths.
func (ix *index) doubleEarlyReturn(key string) int {
	ix.rw.RLock()
	if ix.byKey == nil {
		return 0 // want `ix.rw.RLock\(\) locked at line \d+ is still held on this return path`
	}
	v, ok := ix.byKey[key]
	if !ok {
		return -1 // want `ix.rw.RLock\(\) locked at line \d+ is still held on this return path`
	}
	ix.rw.RUnlock()
	return v
}

// unlockWrongHalf pays the read half off with the write-half Unlock;
// the RLock stays held.
func (ix *index) unlockWrongHalf(key string) int {
	ix.rw.RLock()
	v := ix.byKey[key]
	ix.rw.Unlock()
	return v // want `ix.rw.RLock\(\) locked at line \d+ is still held on this return path`
}

// deferRUnlock is the canonical safe read path.
func (ix *index) deferRUnlock(key string) int {
	ix.rw.RLock()
	defer ix.rw.RUnlock()
	return ix.byKey[key] // ok: deferred RUnlock pays the read half off
}

// branchesBalanced unlocks the right half on every path.
func (ix *index) branchesBalanced(key string, upgrade bool) int {
	if upgrade {
		ix.rw.Lock()
		ix.byKey[key]++
		ix.rw.Unlock()
		return ix.byKey[key]
	}
	ix.rw.RLock()
	v := ix.byKey[key]
	ix.rw.RUnlock()
	return v // ok: each branch releases what it took
}
