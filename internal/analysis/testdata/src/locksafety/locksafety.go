// Fixture for the locksafety analyzer.
package locksafety

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func byValue(g guarded) int { return g.n } // want `parameter passes struct containing sync\.Mutex by value`

func byPointer(g *guarded) int { return g.n } // ok

func mutexParam(mu sync.Mutex) {} // want `parameter passes sync\.Mutex by value`

func rwMutexParam(mu sync.RWMutex) {} // want `parameter passes sync\.RWMutex by value`

func (g guarded) valueRecv() int { return g.n } // want `receiver passes struct containing sync\.Mutex by value`

func (g *guarded) ptrRecv() int { return g.n } // ok

func rangeCopy(gs []guarded) {
	for _, g := range gs { // want `range variable copies struct containing sync\.Mutex`
		_ = g.n
	}
	for i := range gs { // ok: index-only range
		_ = i
	}
}

func assignCopy(p *guarded) {
	q := *p // want `assignment copies struct containing sync\.Mutex`
	_ = q
	r := p // ok: pointer copy
	_ = r
	fresh := guarded{} // ok: composite literal is a fresh value
	_ = fresh
}
