// Fixture for a malformed ignore directive: no reason is given, so the
// directive suppresses nothing and is itself reported.
package suppressbad

//ecolint:ignore unitsafety
const dt = 1e-3
