// Package hotalloc is the golden fixture for the hotalloc analyzer:
// Decode is marked //ecolint:hotpath and commits every allocating
// construct the check knows; Accumulate and ring.Push are marked and
// stay entirely on the reuse idioms, so they must be silent.
package hotalloc

import (
	"fmt"

	"hotalloc/pool"
)

// record is boxed and escaped in various ways below.
type record struct {
	n int
}

// sink accepts anything; its body never allocates, so only the boxing
// at its call sites is flagged.
func sink(v interface{}) int {
	if v == nil {
		return 0
	}
	return 1
}

// sink2 is sink for the negative cases.
func sink2(v interface{}) bool {
	return v == nil
}

// helper allocates directly.
func helper(n int) []float64 {
	return make([]float64, n)
}

// helper2 allocates transitively through helper.
func helper2(n int) []float64 {
	return helper(n + 1)
}

// scale multiplies in place; it never allocates, so hot callers may
// use it freely without a mark.
func scale(xs []float64, k float64) {
	for i := range xs {
		xs[i] *= k
	}
}

// Cold allocates every call but carries no mark: nothing is reported
// here — marked callers see its AllocFact instead.
func Cold() *record {
	return &record{n: 1}
}

// --- positive cases -------------------------------------------------

// Decode is the marked warm path: every allocating construct in its
// body must be called out with its cause.
//
//ecolint:hotpath
func Decode(dst, src []float64, name string, sample record) float64 {
	buf := make([]float64, 16)            // want `make\(\[\]float64\) in hotpath function Decode allocates because a make call`
	p := new(float64)                     // want `new\(\.\.\.\) in hotpath function Decode allocates because a new call`
	idx := []int{0, 1}                    // want `\[\]int\{\.\.\.\} slice literal in hotpath function Decode allocates because a composite literal`
	tab := map[string]int{}               // want `map\[string\]int\{\.\.\.\} map literal in hotpath function Decode allocates because a composite literal`
	r := &record{}                        // want `&record\{\.\.\.\} in hotpath function Decode allocates because a composite literal`
	ys := append([]float64(nil), src...)  // want `append onto a non-reused slice in hotpath function Decode allocates because an append onto a fresh slice`
	f := func() float64 { return dst[0] } // want `function literal capturing dst in hotpath function Decode allocates because a closure`
	n := sink(sample)                     // want `argument sample boxed into interface\{\} in hotpath function Decode allocates because an interface conversion`
	var box interface{}
	box = sample                     // want `sample boxed into interface\{\} in hotpath function Decode allocates because an interface conversion`
	bs := []byte(name)               // want `conversion from string to \[\]byte in hotpath function Decode allocates because a string conversion`
	w1 := helper(3)                  // want `call to helper in hotpath function Decode allocates because it reaches a make call`
	w2 := helper2(3)                 // want `call to helper2 in hotpath function Decode allocates because it reaches a make call via helper`
	g1 := pool.Grow(4)               // want `call to pool\.Grow in hotpath function Decode allocates because it reaches a make call`
	g2 := pool.Indirect(4)           // want `call to pool\.Indirect in hotpath function Decode allocates because it reaches a make call via Grow`
	s := fmt.Sprintf("%d", len(src)) // want `call to fmt\.Sprintf in hotpath function Decode allocates because it reaches fmt\.Sprintf \(formats into fresh allocations\)`
	c := Cold()                      // want `call to Cold in hotpath function Decode allocates because it reaches a composite literal`
	_ = box
	_ = bs
	_ = s
	return buf[0] + *p + float64(idx[0]+tab[name]+r.n+n+c.n) + ys[0] + f() + w1[0] + w2[0] + g1[0] + g2[0]
}

// --- negative cases -------------------------------------------------

// Accumulate is the reuse-idiom warm path: nothing here allocates, so
// the mark produces no findings.
//
//ecolint:hotpath
func Accumulate(dst, src []float64) []float64 {
	dst = append(dst, src...) // reuse idiom: exempt
	total := 0.0
	for _, v := range src {
		total += v
	}
	pool.Fill(dst, total) // hot-certified callee: clean by contract
	sum := pool.Sum(dst)  // allocation-free callee: no fact, no finding
	scale(dst, sum)       // clean local callee
	g := func(a, b float64) float64 { return a + b } // capture-free literal: static func value
	var p *record
	if sink2(p) || sink2(nil) { // pointer and nil ride the interface word: no box
		return dst
	}
	//ecolint:ignore hotalloc deliberate grow on the cold miss path
	cold := make([]float64, len(dst))
	copy(cold, dst)
	cold[0] = g(1, 2)
	return dst
}

// ring exercises the method form of the mark.
type ring struct {
	buf []float64
}

// Push appends through the reuse idiom on the receiver's buffer.
//
//ecolint:hotpath
func (r *ring) Push(v float64) {
	r.buf = append(r.buf, v)
}
