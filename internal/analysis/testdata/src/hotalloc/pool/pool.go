// Package pool is the dependency half of the hotalloc fixture:
// nothing here is reported (only Fill is marked, and its body is
// clean), but the exported facts drive the parent package's checks —
// Grow and Indirect carry AllocFacts, Fill carries a HotFact.
package pool

// Grow allocates directly; exported, so dependents import its
// AllocFact.
func Grow(n int) []float64 {
	return make([]float64, n)
}

// Indirect reaches make through Grow; its fact keeps the via link so
// callers see the whole path.
func Indirect(n int) []float64 {
	return Grow(n)
}

// Sum never allocates: hot callers use it without any mark.
func Sum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// Fill is hotpath-certified: its body is audited here, and cross-
// package callers treat it as clean through the HotFact.
//
//ecolint:hotpath
func Fill(dst []float64, v float64) {
	for i := range dst {
		dst[i] = v
	}
}
