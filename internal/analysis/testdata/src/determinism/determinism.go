// Package determinism is the golden fixture for the determinism
// analyzer: it is marked deterministic, so every call path reaching a
// nondeterminism source must be flagged, and every seeded / sorted /
// suppressed variant must stay quiet.
//
//ecolint:deterministic
package determinism

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"determinism/clockdep"
)

// --- positive cases -------------------------------------------------

// StampNow calls the wall clock directly.
func StampNow() int64 {
	return time.Now().UnixNano() // want `nondeterministic call to time.Now in a deterministic package`
}

// Age uses time.Since (wall clock behind a convenience wrapper).
func Age(t0 time.Time) time.Duration {
	return time.Since(t0) // want `nondeterministic call to time.Since in a deterministic package`
}

// Roll uses the process-global math/rand source.
func Roll() int {
	return rand.Intn(6) // want `nondeterministic call to math/rand.Intn \(process-global source\) in a deterministic package`
}

// DumpGrades writes map entries in iteration order — the classic
// map-ordered-output bug that breaks golden-file comparison.
func DumpGrades(w *strings.Builder, grades map[string]int) {
	for name, g := range grades {
		fmt.Fprintf(w, "%s=%d\n", name, g) // want `nondeterministic call to map iteration order \(range writes to an output sink\) in a deterministic package`
	}
}

// localHelper is tainted directly; throughHelper must be flagged at its
// call site (same-package transitive propagation).
func localHelper() int64 {
	return time.Now().Unix() // want `nondeterministic call to time.Now in a deterministic package`
}

func throughHelper() int64 {
	return localHelper() // want `call to localHelper, which transitively reaches time.Now, in a deterministic package`
}

// CrossPackage calls into an unmarked helper package; the taint arrives
// via the exported NondetFact, not by re-walking clockdep.
func CrossPackage() int64 {
	return clockdep.WallClock() // want `call to clockdep.WallClock, which transitively reaches time.Now, in a deterministic package`
}

// CrossPackageDeep goes through two hops inside the helper package.
func CrossPackageDeep() int64 {
	return clockdep.DoubleHop() // want `call to clockdep.DoubleHop, which transitively reaches time.Now, in a deterministic package`
}

// JitterySlot picks up the global-rand taint across the boundary.
func JitterySlot(base int) int {
	return clockdep.Jittered(base) // want `call to clockdep.Jittered, which transitively reaches math/rand.Intn \(process-global source\), in a deterministic package`
}

// ClosureTaint builds a closure around the wall clock; the enclosing
// function is charged with the source even though the literal runs
// later.
func ClosureTaint() func() int64 {
	return func() int64 {
		return time.Now().UnixNano() // want `nondeterministic call to time.Now in a deterministic package`
	}
}

// --- negative cases -------------------------------------------------

// SeededRoll drives a caller-seeded source: methods on *rand.Rand are
// deterministic by construction.
func SeededRoll(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(6)
}

// SortedDump collects, sorts, then writes — the approved pattern for
// emitting map contents.
func SortedDump(w *strings.Builder, grades map[string]int) {
	names := make([]string, 0, len(grades))
	for name := range grades {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "%s=%d\n", name, grades[name])
	}
}

// CrossPackageClean calls only deterministic helpers.
func CrossPackageClean(seed int64) int {
	return clockdep.Seeded(seed)
}

// PureTimeMath does duration arithmetic on inputs — no clock read.
func PureTimeMath(t0 time.Time) time.Time {
	return t0.Add(3 * time.Second)
}

// SuppressedStamp documents a deliberate wall-clock read; the reasoned
// directive keeps it out of the report.
func SuppressedStamp() int64 {
	//ecolint:ignore determinism operator-facing log line, never compared to goldens
	return time.Now().UnixNano()
}
