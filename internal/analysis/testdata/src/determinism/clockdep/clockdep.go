// Package clockdep is a plain helper package — NOT marked
// //ecolint:deterministic — so nothing in it is reported directly. Its
// job is to export NondetFacts that the marked parent package trips
// over: WallClock reaches time.Now, Jittered reaches the global
// math/rand source, and DoubleHop reaches time.Now through WallClock,
// proving taint propagates through two intra-package hops before
// crossing the package boundary.
package clockdep

import (
	"math/rand"
	"time"
)

// WallClock reads the wall clock; callers in deterministic packages
// must be flagged.
func WallClock() int64 {
	return time.Now().UnixNano()
}

// DoubleHop is tainted transitively: DoubleHop -> WallClock -> time.Now.
func DoubleHop() int64 {
	return WallClock() + 1
}

// Jittered uses the process-global rand source.
func Jittered(base int) int {
	return base + rand.Intn(10)
}

// Seeded is deterministic: the caller controls the seed, and methods on
// a seeded *rand.Rand are not flagged.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(100)
}

// Elapsed is deterministic: pure duration arithmetic on its inputs.
func Elapsed(a, b time.Time) time.Duration {
	return b.Sub(a)
}
