// Package atomicmix is the golden fixture for the mixed-access
// detector: any variable or field touched through sync/atomic must be
// touched through sync/atomic everywhere, or the memory model promises
// nothing about either access.
package atomicmix

import "sync/atomic"

type stats struct {
	hits   int64
	misses int64
	ready  uint32
	clean  int64 // only ever accessed atomically
	plain  int64 // never accessed atomically
}

func (s *stats) incHit()  { atomic.AddInt64(&s.hits, 1) }
func (s *stats) incMiss() { atomic.AddInt64(&s.misses, 1) }
func (s *stats) markUp()  { atomic.StoreUint32(&s.ready, 1) }

// --- positive cases -------------------------------------------------

// readPlain loads an atomically-written counter with a plain read.
func (s *stats) readPlain() int64 {
	return s.hits // want `s\.hits is accessed atomically .* but read/written plainly here`
}

// resetPlain stores over atomic state with a plain write.
func (s *stats) resetPlain() {
	s.hits = 0   // want `s\.hits is accessed atomically .* but read/written plainly here`
	s.misses = 0 // want `s\.misses is accessed atomically .* but read/written plainly here`
}

// bumpPlain mixes ++ with atomic.AddInt64 on the same field.
func (s *stats) bumpPlain() {
	s.hits++ // want `s\.hits is accessed atomically .* but read/written plainly here`
}

// checkFlag polls the atomic flag without atomic.LoadUint32.
func (s *stats) checkFlag() bool {
	return s.ready == 1 // want `s\.ready is accessed atomically .* but read/written plainly here`
}

// ratio reads both counters plainly in one expression.
func (s *stats) ratio() float64 {
	return float64(s.hits) / // want `s\.hits is accessed atomically .* but read/written plainly here`
		float64(s.misses+1) // want `s\.misses is accessed atomically .* but read/written plainly here`
}

// Package-level mixing.
var total int64

func addTotal(n int64) { atomic.AddInt64(&total, n) }

// snapshotTotal reads the package counter plainly.
func snapshotTotal() int64 {
	return total // want `total is accessed atomically .* but read/written plainly here`
}

// zeroTotal writes it plainly.
func zeroTotal() {
	total = 0 // want `total is accessed atomically .* but read/written plainly here`
}

// Sharded counters: the slice is atomic-land once any slot is.
var shards []uint64

func incShard(i int) { atomic.AddUint64(&shards[i], 1) }

// sumShards walks the slots with plain loads.
func sumShards() uint64 {
	var sum uint64
	for i := range shards { // want `shards is accessed atomically .* but read/written plainly here`
		sum += shards[i] // want `shards is accessed atomically .* but read/written plainly here`
	}
	return sum
}

// --- negative cases -------------------------------------------------

// allAtomic keeps every access on the atomic side.
func (s *stats) allAtomic() int64 {
	atomic.AddInt64(&s.clean, 1)
	return atomic.LoadInt64(&s.clean) // ok: atomic everywhere
}

// neverAtomic never enters atomic-land at all.
func (s *stats) neverAtomic() int64 {
	s.plain++
	return s.plain // ok: plain everywhere
}

// construct initialises via a composite literal: the value is
// unpublished while it is being built.
func construct() *stats {
	return &stats{hits: 0, misses: 0} // ok: composite-literal keys are not accesses
}

// swapFlag uses the atomic API for the read-modify-write.
func (s *stats) swapFlag() bool {
	return atomic.CompareAndSwapUint32(&s.ready, 0, 1) // ok: atomic CAS
}

// suppressed documents a deliberate relaxed read.
func (s *stats) suppressed() int64 {
	//ecolint:ignore atomicmix monotonic counter, stale read acceptable in the stats dump
	return s.hits // ok: suppressed with a reason
}
