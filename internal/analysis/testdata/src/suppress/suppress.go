// Fixture for //ecolint:ignore directive handling, exercised through the
// unitsafety analyzer.
package suppress

//ecolint:ignore unitsafety calibration constant matches the scope's raw tick
const dt = 1e-3 // ok: suppressed by the directive on the line above

const dtInline = 1e-3 //ecolint:ignore unitsafety raw value intentional here

//ecolint:ignore all sweeping suppression with a reason also applies
const dtAll = 1e-3 // ok: suppressed by the "all" directive

//ecolint:ignore floatcmp directive names a different analyzer, so it does not apply
const dtWrong = 1e-3 // want `magic literal 1e-3 in time expression .dtWrong.`

const dtPlain = 1e-3 // want `magic literal 1e-3 in time expression .dtPlain.`
