// Package other is outside the floatcmp numerical-package set, so nothing
// here is flagged.
package other

func same(a, b float64) bool {
	return a == b // ok: floatcmp only covers physics/channel/geometry
}
