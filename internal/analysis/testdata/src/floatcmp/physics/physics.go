// Fixture for the floatcmp analyzer: the package base name "physics" puts
// it in the analyzer's numerical-package set.
package physics

func cmp(a, b float64) bool {
	if a == b { // want `exact floating-point == comparison`
		return true
	}
	if a == 0 { // ok: zero-sentinel comparison is exempt
		return false
	}
	if b != 0.0 { // ok: zero-sentinel comparison is exempt
		return false
	}
	n, m := 3, 4
	if n == m { // ok: integer comparison
		return false
	}
	var f32a, f32b float32
	if f32a != f32b { // want `exact floating-point != comparison`
		return false
	}
	return a != b // want `exact floating-point != comparison`
}
