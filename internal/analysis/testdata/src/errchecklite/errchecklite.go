// Fixture for the errchecklite analyzer.
package errchecklite

import (
	"io"

	"errchecklite/internal/coding"
	"errchecklite/internal/shmwire"
)

func drop(w io.Writer, r io.Reader) {
	var pie coding.PIE
	pie.Encode(nil)            // want `error returned by coding\.Encode is discarded`
	shmwire.WriteFrame(w, nil) // want `error returned by shmwire\.WriteFrame is discarded`
	defer shmwire.ReadFrame(r) // want `error returned by shmwire\.ReadFrame is discarded`

	_, _ = pie.Encode(nil)     // ok: assigning to _ is an explicit decision
	pie.Decode(nil)            // ok: Decode here returns no error
	shmwire.EncodeTelemetry(1) // ok: no error result
	coding.Checksum(nil)       // ok: Checksum is not an encode/decode/read/write verb
	if err := shmwire.WriteFrame(w, nil); err != nil {
		_ = err
	}
}
