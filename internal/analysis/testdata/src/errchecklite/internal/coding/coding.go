// Fixture stand-in for ecocapsule/internal/coding: the analyzer matches
// callee packages by the "internal/coding" path suffix.
package coding

type PIE struct{}

func (PIE) Encode(bits []byte) ([]byte, error) { return bits, nil }

func (PIE) Decode(durations []float64) []byte { return nil }

func Checksum(b []byte) error { return nil }
