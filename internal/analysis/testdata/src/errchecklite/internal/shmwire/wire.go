// Fixture stand-in for ecocapsule/internal/shmwire.
package shmwire

import "io"

func WriteFrame(w io.Writer, body []byte) error { return nil }

func ReadFrame(r io.Reader) ([]byte, error) { return nil, nil }

func EncodeTelemetry(v float64) []byte { return nil }
