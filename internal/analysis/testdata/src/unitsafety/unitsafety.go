// Fixture for the unitsafety analyzer.
package unitsafety

const dt = 1e-3 // want `magic literal 1e-3 in time expression .dt.; use units\.MS`

type Cfg struct {
	SampleRate float64
	Samples    int
}

func magics(widthMM float64) {
	var cfg Cfg
	cfg.SampleRate = 1e6 // want `magic literal 1e6 in frequency expression .SampleRate.; use units\.MHz`
	cfg.Samples = 1000   // ok: "samples" carries no dimension
	c := Cfg{
		SampleRate: 1e6, // want `magic literal 1e6 in frequency expression .SampleRate.`
	}
	_ = c

	scale := widthMM * 1e-3 // want `magic literal 1e-3 in length expression .widthMM.; use units\.MM`
	_ = scale

	freqKHz := 250.0 // ok: 250 is not a unit multiplier
	_ = freqKHz
}

func mixed() float64 {
	freqHz := 230e3
	periodS := 1.0 / freqHz
	sane := freqHz * periodS  // ok: multiplying across dimensions is legitimate
	bogus := freqHz + periodS // want `freqHz \+ periodS mixes dimensions \(frequency \+ time\)`
	return sane + bogus
}

func electrical(vin float64) float64 {
	dropVoltage := 120 * 1e-3 // want `magic literal 1e-3 in voltage expression .dropVoltage.; use units\.MV`
	rippleUV := vin * 1e-6    // want `magic literal 1e-6 in voltage expression .vin.; use units\.UV` `magic literal 1e-6 in voltage expression .rippleUV.; use units\.UV`

	energyBudget := 4.4 * 1e-6 // want `magic literal 1e-6 in energy expression .energyBudget.; use units\.UJ`
	joulesPerBit := 1e-3       // want `magic literal 1e-3 in energy expression .joulesPerBit.; use units\.MJ`

	wrong := vin + energyBudget // want `vin \+ energyBudget mixes dimensions \(voltage \+ energy\)`
	return dropVoltage + rippleUV + joulesPerBit + wrong
}
