// Package sensors is the dependency half of the dimcheck fixture: its
// annotations travel to the parent package as UnitFacts — on the
// package var (SampleRate), the struct fields (Reading), and the
// function signatures (Period, Clock) — so every cross-package check
// in the parent exercises the fact path, not the local tables.
package sensors

// SampleRate is the ADC sample rate.
//
//ecolint:unit hz
var SampleRate = 1e6

// Reading is one strain-gauge sample.
type Reading struct {
	//ecolint:unit v
	Volts float64
	//ecolint:unit s
	At float64
}

// Period converts a rate to its period.
//
//ecolint:unit rate hz
//ecolint:unit return s
func Period(rate float64) float64 {
	return 1 / rate
}

// Attenuate scales a voltage by a dimensionless gain.
//
//ecolint:unit volts v
//ecolint:unit return v
func Attenuate(volts, gain float64) float64 {
	return volts * gain
}

// Clock returns the sample period and a cursor; the annotated first
// result must spread through two-value assignments in callers.
//
//ecolint:unit return s
func Clock() (float64, int) {
	return 1 / SampleRate, 0
}
