// Package dimcheck is the golden fixture for the dimensional-analysis
// pass: annotated package vars, fields and signatures — local and
// imported through sensors' UnitFacts — must flag mixed-unit adds,
// compares, stores, arguments and returns, while scalar literals,
// derived units (hz = 1/s, w = j/s) and even-exponent square roots
// stay quiet.
package dimcheck

import (
	"math"

	"dimcheck/sensors"
)

// carrier is the acoustic carrier frequency.
//
//ecolint:unit hz
var carrier = 40e3

// window is the demodulation window length.
//
//ecolint:unit s
var window = 0.005

// speed is the propagation speed in concrete.
//
//ecolint:unit m/s
var speed = 4000.0

// bias is the sensor bias voltage.
//
//ecolint:unit v
var bias = 0.4

// samples is an annotated series: the unit describes the elements.
//
//ecolint:unit v
var samples = []float64{0.1, 0.2, 0.3}

// --- malformed directives -------------------------------------------

//ecolint:unit furlong // want `unknown unit "furlong" in //ecolint:unit directive`
var badUnit = 3.0

// MisTarget has a directive naming a non-parameter.
//
//ecolint:unit bogus hz // want `unit directive names "bogus", which is not a parameter of MisTarget`
func MisTarget(x float64) float64 { return x }

// NoResult annotates a return that does not exist.
//
//ecolint:unit return s // want `unit directive annotates the return value of NoResult, which returns nothing`
func NoResult() {}

// --- positive cases -------------------------------------------------

// AddFreqTime adds a frequency to a time.
func AddFreqTime() float64 {
	return carrier + window // want `unit mismatch: carrier \(hz\) \+ window \(s\)`
}

// Compare orders a frequency against a time.
func Compare() bool {
	return carrier > window // want `unit mismatch: carrier \(hz\) > window \(s\)`
}

// Retune stores wrong-unit values into annotated package vars, local
// and imported.
func Retune() {
	carrier = 2 * window // want `cannot store s value in carrier \(declared unit hz\)`
	carrier = 38e3       // bare literal: fine
	sensors.SampleRate = window // want `cannot store s value in sensors\.SampleRate \(declared unit hz\)`
}

// StoreField stores a time into a voltage field of an imported struct.
func StoreField() {
	var r sensors.Reading
	r.Volts = window // want `cannot store s value in r\.Volts \(declared unit v\)`
	r.At = window    // matching unit: fine
	_ = r
}

// BuildReading mislabels a field in a composite literal.
func BuildReading() sensors.Reading {
	return sensors.Reading{Volts: window, At: 0.001} // want `cannot store s value in field Reading\.Volts \(declared unit v\)`
}

// CallPeriod passes a time where the imported signature wants a rate.
func CallPeriod() float64 {
	return sensors.Period(window) // want `argument window to sensors\.Period has unit s, want hz`
}

// BadRate mislabels its own result.
//
//ecolint:unit return hz
func BadRate() float64 {
	return window // want `return value has unit s, want hz`
}

// Accumulate folds a frequency into a running time.
func Accumulate() float64 {
	t := window
	t += carrier // want `unit mismatch: t \(s\) \+= carrier \(hz\)`
	return t
}

// BranchJoin keeps the unit through a join: both branches leave x in
// seconds, so the mismatch downstream is certain.
func BranchJoin(cond bool) float64 {
	x := window
	if cond {
		x = 1 / carrier
	}
	return x + carrier // want `unit mismatch: x \(s\) \+ carrier \(hz\)`
}

// SpreadResults pulls the annotated first result of a two-value call.
func SpreadResults() float64 {
	t, n := sensors.Clock()
	_ = n
	return t + carrier // want `unit mismatch: t \(s\) \+ carrier \(hz\)`
}

// --- negative cases -------------------------------------------------

// Delay divides a length by a speed and gets a time.
//
//ecolint:unit dist m
//ecolint:unit return s
func Delay(dist float64) float64 {
	return dist / speed
}

// SamplesIn counts whole samples in a window: hz·s is dimensionless
// and compares freely against a bare count.
func SamplesIn() bool {
	return carrier*window > 100
}

// RMSSpeed takes the square root of an even-exponent square.
//
//ecolint:unit return m/s
func RMSSpeed() float64 {
	return math.Sqrt(speed * speed)
}

// Rate inverts a period: 1/s is hz.
//
//ecolint:unit return hz
func Rate() float64 {
	return 1 / window
}

// Dissipated multiplies power by time and returns energy (w·s = j).
//
//ecolint:unit p w
//ecolint:unit t s
//ecolint:unit return j
func Dissipated(p, t float64) float64 {
	return p * t
}

// MeanVolt ranges over an annotated series; counts from len are pure
// scalars and math.Abs is unit-transparent.
//
//ecolint:unit return v
func MeanVolt() float64 {
	sum := 0.0
	for _, s := range samples {
		sum += math.Abs(s)
	}
	return sum / float64(len(samples))
}

// CleanCalls match the imported signatures exactly.
func CleanCalls() float64 {
	p := sensors.Period(carrier)
	v := sensors.Attenuate(bias, 0.5)
	return p*carrier + v/bias
}

// Suppressed documents a deliberate mixed add.
func Suppressed() float64 {
	//ecolint:ignore dimcheck the carrier rides on the window envelope here
	return carrier + window
}

// Scaled shows bare literals composing freely with any unit.
func Scaled() float64 {
	return carrier*2 + 1000 + badUnit*carrier
}
