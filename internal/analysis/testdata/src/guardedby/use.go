package guardedby

import "guardedby/store"

// Cross-package checking: store.Store's annotation and helper contracts
// arrive here as facts, not as re-analyzed source.

// useStoreBare reads the exported guarded field with nothing held.
func useStoreBare(s *store.Store) int {
	return s.Data["k"] // want `guarded field s\.Data is read without holding s\.mu`
}

// useStoreWriteBare stores into the guarded map bare.
func useStoreWriteBare(s *store.Store) {
	s.Data["k"] = 1 // want `guarded field s\.Data is written without holding s\.mu`
}

// useHelperBare calls the requires-held helper bare.
func useHelperBare(s *store.Store) int {
	return s.GetLocked("k") // want `call to GetLocked requires s\.mu\.Lock\(\) held`
}

// useAccessors goes through the locking API and stays quiet.
func useAccessors(s *store.Store) int {
	s.Put("k", 1)
	return s.Get("k") // ok: accessor methods own the locking
}

// buildLocal constructs its own store; unpublished writes are exempt.
func buildLocal() *store.Store {
	s := store.New()
	_ = s
	local := &store.Store{}
	local.Data = map[string]int{} // ok: unpublished constructor-local value
	return local
}
