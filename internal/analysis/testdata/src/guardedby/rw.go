package guardedby

import "sync"

// gauge pins the RWMutex half of the contract: reads are satisfied by
// either half of the lock, writes demand the write half.
type gauge struct {
	mu sync.RWMutex
	//ecolint:guardedby mu
	val float64
}

// --- positive cases -------------------------------------------------

// readBare holds neither half.
func (g *gauge) readBare() float64 {
	return g.val // want `guarded field g\.val is read without holding g\.mu or g\.mu\.RLock\(\)`
}

// writeUnderRLock upgrades illegally: RLock does not license writes.
func (g *gauge) writeUnderRLock() {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val++ // want `guarded field g\.val is written while holding only g\.mu\.RLock\(\); writes need g\.mu\.Lock\(\)`
}

// writeBare holds nothing at all.
func (g *gauge) writeBare(v float64) {
	g.val = v // want `guarded field g\.val is written without holding g\.mu`
}

// readAfterRUnlock re-reads once the read half is gone.
func (g *gauge) readAfterRUnlock() float64 {
	g.mu.RLock()
	v := g.val
	g.mu.RUnlock()
	return v + g.val // want `guarded field g\.val is read without holding g\.mu or g\.mu\.RLock\(\)`
}

// --- negative cases -------------------------------------------------

// readUnderRLock is the cheap read path.
func (g *gauge) readUnderRLock() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val // ok: read lock satisfies reads
}

// readUnderLock is stronger than needed but legal.
func (g *gauge) readUnderLock() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.val // ok: write lock satisfies reads too
}

// writeUnderLock is the canonical write path.
func (g *gauge) writeUnderLock(v float64) {
	g.mu.Lock()
	g.val = v // ok
	g.mu.Unlock()
}

// setLocked moves the write obligation to the call site.
func (g *gauge) setLocked(v float64) {
	g.val = v // ok: requires-held helper
}

// bump wraps setLocked under the write half.
func (g *gauge) bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.setLocked(g.val + 1) // ok: write lock held at the call
}
