// Package guardedby is the golden fixture for the guarded-by contract
// checker: every access of an //ecolint:guardedby field on a path that
// does not hold the named mutex must be flagged, and every properly
// locked (or requires-held, or constructor-local) variant must stay
// quiet.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	//ecolint:guardedby mu
	n int
	//ecolint:guardedby mu
	hist map[int]int
}

// --- positive cases -------------------------------------------------

// bumpNoLock writes the guarded field with no lock anywhere in sight.
func (c *counter) bumpNoLock() {
	c.n++ // want `guarded field c\.n is written without holding c\.mu`
}

// readNoLock reads it bare.
func (c *counter) readNoLock() int {
	return c.n // want `guarded field c\.n is read without holding c\.mu`
}

// unlockTooEarly touches the field again after releasing.
func (c *counter) unlockTooEarly() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.n++ // want `guarded field c\.n is written without holding c\.mu`
}

// oneArmUnlocked only locks on one branch; the must-held intersection
// at the join is empty.
func (c *counter) oneArmUnlocked(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `guarded field c\.n is written without holding c\.mu`
	if b {
		c.mu.Unlock()
	}
}

// mapNoLock deletes from the guarded map bare.
func (c *counter) mapNoLock(k int) {
	delete(c.hist, k) // want `guarded field c\.hist is written without holding c\.mu`
}

// goroutineNoLock holds the lock on the spawning goroutine only; the
// closure runs with nothing held.
func (c *counter) goroutineNoLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want `guarded field c\.n is written without holding c\.mu`
	}()
}

// callHelperNoLock calls a requires-held helper bare.
func (c *counter) callHelperNoLock() {
	c.bumpLocked() // want `call to bumpLocked requires c\.mu\.Lock\(\) held`
}

// callFlushNoLock calls a directive-annotated helper bare.
func (c *counter) callFlushNoLock() {
	c.flush() // want `call to flush requires c\.mu\.Lock\(\) held`
}

// badGuard names a field that is not a mutex.
type badGuard struct {
	//ecolint:guardedby missing
	x int // want `guardedby directive names "missing", which is not a sync\.Mutex/RWMutex field of badGuard`
}

// selfGuard annotates the mutex itself.
type selfGuard struct {
	//ecolint:guardedby mu
	mu sync.Mutex // want `guardedby directive on the mutex field "mu" itself`
}

// noName forgets the argument.
type noName struct {
	mu sync.Mutex
	//ecolint:guardedby
	y int // want `guardedby directive names no mutex field`
}

// badReq names a guard the receiver's struct does not have.
//
//ecolint:requiresheld nothere
func (c *counter) badReq() { // want `requiresheld directive names "nothere", which is not a mutex field`
}

// --- negative cases -------------------------------------------------

// bumpLocked is a requires-held helper: its bare access is legal, the
// obligation moves to every call site.
func (c *counter) bumpLocked() {
	c.n++ // ok: Locked-suffix contract
}

// flush declares the same contract by directive instead of by name.
//
//ecolint:requiresheld mu
func (c *counter) flush() {
	c.hist = nil // ok: caller holds c.mu by contract
}

// properLock is the canonical form, helper call included.
func (c *counter) properLock() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	c.bumpLocked() // ok: lock held at the call
}

// lock and unlock are lock wrappers; their Acquires/Releases facts map
// into the caller's frame.
func (c *counter) lock()   { c.mu.Lock() }
func (c *counter) unlock() { c.mu.Unlock() }

// viaWrappers never names sync.Mutex directly and is still provably
// locked.
func (c *counter) viaWrappers() {
	c.lock()
	c.n++ // ok: wrapper's Acquires fact holds here
	c.unlock()
}

// newCounter writes fields of a value that has not been published.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	c.hist = map[int]int{} // ok: constructor-local, unpublished
	return c
}

// suppressed shows an audited escape hatch.
func (c *counter) suppressed() int {
	//ecolint:ignore guardedby single-writer snapshot read, torn int acceptable for display
	return c.n // ok: suppressed with a reason
}
