// Package store is the cross-package half of the guardedby fixture:
// its annotated struct exports a GuardedByFact and its helpers export
// LockFacts, so the parent package's accesses and call sites are
// checked across the package boundary.
package store

import "sync"

// Store is a shared map with an exported guarded field.
type Store struct {
	mu sync.Mutex
	//ecolint:guardedby mu
	Data map[string]int
}

// New builds an unpublished Store; the constructor-local writes are
// exempt from guarding.
func New() *Store {
	s := &Store{}
	s.Data = map[string]int{} // ok: s is not published yet
	return s
}

// GetLocked reads Data under the caller's lock; the requirement is
// inferred from the Locked suffix and exported as a fact.
func (s *Store) GetLocked(k string) int {
	return s.Data[k] // ok: requires-held helper, checked at call sites
}

// Put takes the lock itself, defer-style.
func (s *Store) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Data[k] = v // ok: defer holds mu to the return
}

// Get wraps GetLocked correctly.
func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.GetLocked(k) // ok: lock held at the call
}
