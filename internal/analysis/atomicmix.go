package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// AtomicMix flags variables and struct fields that are accessed both
// through sync/atomic (atomic.AddInt64(&s.n, 1), atomic.LoadUint32(&v))
// and through plain loads or stores. Mixing the two voids the memory
// model: the plain access can tear, be reordered past the atomic one,
// or simply miss a concurrent update — a mutex held around the plain
// access does not help, because the atomic writer does not take it.
// Either every access goes through sync/atomic, or none does.
//
// Composite-literal initialisation (S{n: 0}) is not counted as a plain
// access: the value is unpublished while it is being built.
var AtomicMix = &Analyzer{
	Name:    "atomicmix",
	Version: "1",
	Doc: "flags variables/fields accessed both via sync/atomic and via plain loads/stores " +
		"(mixed access voids the memory-model guarantees of both)",
	Run: runAtomicMix,
}

// atomicAddrFunc reports whether a call is a sync/atomic function taking
// the target address as its first argument (AddT, LoadT, StoreT, SwapT,
// CompareAndSwapT).
func atomicAddrFunc(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	return len(call.Args) > 0
}

// atomicTargetObject resolves the object behind &expr in an atomic
// call's first argument: the field var for &s.n, the variable for &v.
func atomicTargetObject(pass *Pass, arg ast.Expr) types.Object {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	switch target := ast.Unparen(un.X).(type) {
	case *ast.Ident:
		return pass.Info.Uses[target]
	case *ast.SelectorExpr:
		if sel, ok := pass.Info.Selections[target]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
	case *ast.IndexExpr:
		// &counts[i]: atomic slots in a slice — track the slice object
		// so plain counts[i] reads get flagged too.
		return rootObject(pass, target.X)
	}
	return nil
}

func runAtomicMix(pass *Pass) {
	// Pass 1: find every atomically-accessed object and remember one
	// representative position for the diagnostic.
	atomicAt := make(map[types.Object]token.Pos)
	inAtomicArg := make(map[ast.Node]bool) // subtrees consumed by atomic calls
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !atomicAddrFunc(pass, call) {
				return true
			}
			arg := call.Args[0]
			if obj := atomicTargetObject(pass, arg); obj != nil {
				if _, seen := atomicAt[obj]; !seen {
					atomicAt[obj] = call.Pos()
				}
				inAtomicArg[arg] = true
			}
			return true
		})
	}
	if len(atomicAt) == 0 {
		return
	}

	// Pass 2: every other syntactic reference to those objects is a
	// plain access. Composite-literal keys and field declarations are
	// definition sites, not accesses; the address-taking inside the
	// atomic calls themselves was marked above.
	type finding struct {
		pos  token.Pos
		name string
		obj  types.Object
	}
	var findings []finding
	for _, f := range pass.Files {
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if n != nil && inAtomicArg[n] {
				return false
			}
			switch n := n.(type) {
			case *ast.KeyValueExpr:
				// S{n: 0}: audit only the value side.
				ast.Inspect(n.Value, visit)
				return false
			case *ast.Field:
				return false
			case *ast.SelectorExpr:
				if sel, ok := pass.Info.Selections[n]; ok && sel.Kind() == types.FieldVal {
					if _, hit := atomicAt[sel.Obj()]; hit {
						findings = append(findings, finding{pos: n.Sel.Pos(), name: types.ExprString(n), obj: sel.Obj()})
					}
				}
				// Walk only the base (it may itself be tracked); the Sel
				// ident resolves to the same field object and would
				// double-report.
				ast.Inspect(n.X, visit)
				return false
			case *ast.Ident:
				obj := pass.Info.Uses[n]
				if obj == nil {
					return true
				}
				if _, hit := atomicAt[obj]; hit {
					findings = append(findings, finding{pos: n.Pos(), name: n.Name, obj: obj})
				}
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, fd := range findings {
		atomicPos := pass.Fset.Position(atomicAt[fd.obj])
		pass.Reportf(fd.pos, "%s is accessed atomically (e.g. %s:%d) but read/written plainly here; "+
			"mixed atomic and plain access has no memory-model guarantee",
			fd.name, atomicPos.Filename, atomicPos.Line)
	}
}
