package analysis

import (
	"go/ast"
	"go/types"
	"path"
)

// leakCheckPackages are the long-lived server packages where an unbounded
// goroutine is a real leak: readers and wire servers run for the lifetime
// of a deployment, so every goroutine they start must be stoppable.
var leakCheckPackages = map[string]bool{
	"reader":      true,
	"shmwire":     true,
	"node":        true,
	"dashboard":   true,
	"fleet":       true,
	"faultinject": true,
}

// LeakCheck flags `go ...` statements in the long-lived server packages
// whose spawned function neither receives/captures a context.Context nor
// touches any channel (a stop/done channel, a fan-out queue, a select).
// Such a goroutine has no termination signal: in a monitoring deployment it
// accumulates across reconnects until the reader dies. For same-package
// callees the analyzer inspects the callee body too, so `go s.handle(conn)`
// is fine when handle ranges over a channel.
var LeakCheck = &Analyzer{
	Name: "leakcheck",
	Doc: "flags goroutine launches in reader/shmwire/node/dashboard/fleet/faultinject " +
		"that capture neither a context.Context nor a stop/done channel",
	Run: runLeakCheck,
}

func runLeakCheck(pass *Pass) {
	if !leakCheckPackages[path.Base(pass.Pkg.Path())] {
		return
	}
	// Index same-package function bodies so callee bodies can be inspected.
	bodies := make(map[types.Object]*ast.BlockStmt)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					bodies[obj] = fd.Body
				}
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if hasStopSignal(pass, g.Call, bodies) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine has no stop signal: it captures neither a context.Context nor a channel")
			return true
		})
	}
}

// hasStopSignal reports whether the spawned call can observe cancellation:
// an argument, captured variable, or (for same-package callees) body
// expression whose type is a channel or context.Context.
func hasStopSignal(pass *Pass, call *ast.CallExpr, bodies map[types.Object]*ast.BlockStmt) bool {
	for _, arg := range call.Args {
		if isSignalType(pass.TypeOf(arg)) {
			return true
		}
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return referencesSignal(pass, fun)
	case *ast.Ident:
		if body, ok := bodies[pass.Info.Uses[fun]]; ok {
			return referencesSignal(pass, body)
		}
	case *ast.SelectorExpr:
		if body, ok := bodies[pass.Info.Uses[fun.Sel]]; ok {
			return referencesSignal(pass, body)
		}
	}
	return false
}

// referencesSignal reports whether any expression within n has channel or
// context.Context type.
func referencesSignal(pass *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if e, ok := n.(ast.Expr); ok && isSignalType(pass.TypeOf(e)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isSignalType(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
	}
	return false
}
