package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ecocapsule/internal/analysis/cfg"
)

// This file is the CFG-powered half of the locksafety analyzer: a
// forward may-held dataflow over each function body that reports locks
// still held when control reaches a return (the classic early-return
// leak: `mu.Lock(); if err != nil { return err }; mu.Unlock()`).
//
// The lattice value is the set of held locks, keyed by the printed
// receiver expression ("s.mu", with an R suffix for read locks). A
// deferred unlock releases at the point the defer statement executes —
// every exit after it is covered — and blocks that end in panic /
// t.Fatal have no edge to the exit, so crash paths don't misfire.

// heldSet maps lock key -> position of the acquiring Lock call
// (earliest across joined paths, for stable messages).
type heldSet map[string]token.Pos

// lockOp classifies one statement's effect on the held set.
type lockOp struct {
	key     string
	acquire bool
}

// syncLockMethod returns the lock key and operation for a call to a
// sync.Mutex/sync.RWMutex method, or ok=false.
func syncLockMethod(pass *Pass, call *ast.CallExpr) (lockOp, token.Pos, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, token.NoPos, false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, token.NoPos, false
	}
	recv := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock":
		return lockOp{key: recv, acquire: true}, call.Pos(), true
	case "Unlock":
		return lockOp{key: recv}, call.Pos(), true
	case "RLock":
		return lockOp{key: recv + " (read)", acquire: true}, call.Pos(), true
	case "RUnlock":
		return lockOp{key: recv + " (read)"}, call.Pos(), true
	}
	return lockOp{}, token.NoPos, false
}

// lockOpsIn collects the lock operations a CFG node performs, in
// order. Function literals are skipped — they execute later, if at
// all. A defer of an unlock (directly or via a literal body) counts as
// a release from this point on: every subsequent exit runs it.
func lockOpsIn(pass *Pass, n ast.Node) []lockOp {
	var ops []lockOp
	var walk func(ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// defer mu.Unlock() or defer func(){ ...mu.Unlock()... }()
				if op, _, ok := syncLockMethod(pass, x.Call); ok && !op.acquire {
					ops = append(ops, op)
				} else if lit, isLit := ast.Unparen(x.Call.Fun).(*ast.FuncLit); isLit {
					ast.Inspect(lit.Body, func(y ast.Node) bool {
						if call, isCall := y.(*ast.CallExpr); isCall {
							if op, _, ok := syncLockMethod(pass, call); ok && !op.acquire {
								ops = append(ops, op)
							}
						}
						return true
					})
				}
				return false
			case *ast.CallExpr:
				if op, _, ok := syncLockMethod(pass, x); ok {
					ops = append(ops, op)
				}
			}
			return true
		})
	}
	walk(n)
	return ops
}

// checkLockBalance runs the early-return dataflow on one function.
func checkLockBalance(pass *Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	// Cheap pre-filter: no Lock/RLock call, nothing to do.
	hasAcquire := false
	ast.Inspect(fn.Body, func(x ast.Node) bool {
		if call, ok := x.(*ast.CallExpr); ok {
			if op, _, ok := syncLockMethod(pass, call); ok && op.acquire {
				hasAcquire = true
			}
		}
		return !hasAcquire
	})
	if !hasAcquire {
		return
	}

	g := cfg.New(fn.Body)
	flow := cfg.Flow[heldSet]{
		Entry: func() heldSet { return heldSet{} },
		Copy: func(h heldSet) heldSet {
			out := make(heldSet, len(h))
			for k, v := range h {
				out[k] = v
			}
			return out
		},
		Join: func(dst, src heldSet) (heldSet, bool) {
			changed := false
			for k, pos := range src {
				if prev, ok := dst[k]; !ok || pos < prev {
					dst[k] = pos
					changed = true
				}
			}
			return dst, changed
		},
		Transfer: func(b *cfg.Block, in heldSet) heldSet {
			out := make(heldSet, len(in))
			for k, v := range in {
				out[k] = v
			}
			for _, n := range b.Nodes {
				ops := lockOpsIn(pass, n)
				var pos token.Pos
				if len(ops) > 0 {
					pos = n.Pos()
				}
				for _, op := range ops {
					if op.acquire {
						if _, held := out[op.key]; !held {
							out[op.key] = pos
						}
					} else {
						delete(out, op.key)
					}
				}
			}
			return out
		},
	}
	res := cfg.Forward(g, flow)

	// A block with an edge to Exit is a returning path; report every
	// lock still held when it hands control back.
	reported := make(map[string]bool) // key+return line, to dedupe joins
	for _, b := range g.Reachable() {
		exits := false
		for _, s := range b.Succs {
			if s == g.Exit {
				exits = true
			}
		}
		if !exits {
			continue
		}
		held := res.Out[b]
		if len(held) == 0 {
			continue
		}
		retPos := returnPosOf(b, fn)
		keys := make([]string, 0, len(held))
		for k := range held {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			lockLine := pass.Fset.Position(held[k]).Line
			id := fmt.Sprintf("%s@%d", k, pass.Fset.Position(retPos).Line)
			if reported[id] {
				continue
			}
			reported[id] = true
			pass.Reportf(retPos, "%s locked at line %d is still held on this return path (missing Unlock or defer)",
				describeLock(k), lockLine)
		}
	}
}

// returnPosOf finds the position to report for an exiting block: its
// return statement if present, else the function's closing brace
// (fall-off-the-end exit).
func returnPosOf(b *cfg.Block, fn *ast.FuncDecl) token.Pos {
	for i := len(b.Nodes) - 1; i >= 0; i-- {
		if ret, ok := b.Nodes[i].(*ast.ReturnStmt); ok {
			return ret.Pos()
		}
	}
	return fn.Body.Rbrace
}

func describeLock(key string) string {
	if strings.HasSuffix(key, " (read)") {
		return strings.TrimSuffix(key, " (read)") + ".RLock()"
	}
	return key + ".Lock()"
}
