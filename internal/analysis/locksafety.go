package analysis

import (
	"go/ast"
	"go/types"
)

// LockSafety detects sync.Mutex / sync.RWMutex values (or structs that
// embed them) copied by value: through function parameters or receivers,
// range variables, or plain assignment from existing memory. A copied lock
// guards nothing — two goroutines each lock their own copy and race on the
// shared telemetry state behind it.
var LockSafety = &Analyzer{
	Name:    "locksafety",
	Version: "2",
	Doc: "detects sync.Mutex/sync.RWMutex copied by value through parameters, " +
		"receivers, range variables or assignment, and locks still held on an " +
		"early-return path (CFG dataflow)",
	Run: runLockSafety,
}

// lockPath returns a human-readable description of the lock a type carries
// ("sync.Mutex", "struct containing sync.RWMutex"), or "" if it carries
// none. Pointers do not carry locks — only values do.
func lockPath(t types.Type) string {
	return lockPathRec(t, make(map[types.Type]bool))
}

func lockPathRec(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" {
			switch obj.Name() {
			case "Mutex", "RWMutex":
				return "sync." + obj.Name()
			}
		}
		return lockPathRec(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if inner := lockPathRec(t.Field(i).Type(), seen); inner != "" {
				if inner == "sync.Mutex" || inner == "sync.RWMutex" {
					return "struct containing " + inner
				}
				return inner
			}
		}
	case *types.Array:
		return lockPathRec(t.Elem(), seen)
	}
	return ""
}

func runLockSafety(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil {
					checkFieldList(pass, n.Recv, "receiver")
				}
				checkFieldList(pass, n.Type.Params, "parameter")
				checkLockBalance(pass, n)
			case *ast.FuncLit:
				checkFieldList(pass, n.Type.Params, "parameter")
			case *ast.RangeStmt:
				if n.Value != nil {
					if lock := lockPath(pass.TypeOf(n.Value)); lock != "" {
						pass.Reportf(n.Value.Pos(), "range variable copies %s each iteration; range over pointers instead", lock)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i >= len(n.Lhs) {
						break
					}
					// `_ = x` marks a value as used without observable
					// copying; only real bindings are flagged.
					if lhs, ok := n.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
						continue
					}
					if !copiesExistingValue(rhs) {
						continue
					}
					if lock := lockPath(pass.TypeOf(rhs)); lock != "" {
						pass.Reportf(rhs.Pos(), "assignment copies %s; use a pointer", lock)
					}
				}
			}
			return true
		})
	}
}

// copiesExistingValue reports whether evaluating e copies a value that
// already lives elsewhere (as opposed to a fresh composite literal, call
// result or address-of, which are safe to bind).
func copiesExistingValue(e ast.Expr) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func checkFieldList(pass *Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		if lock := lockPath(pass.TypeOf(field.Type)); lock != "" {
			pass.Reportf(field.Type.Pos(), "%s passes %s by value; use a pointer", kind, lock)
		}
	}
}
