package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural half of the concurrency-safety
// suite: per-function lock-set summaries ("this method acquires f.mu",
// "this helper must be called with f.mu held") exported as object facts
// so that the guardedby analyzer can resolve guarded accesses through
// helper calls — including helpers in other packages — without
// re-walking their bodies.
//
// Summary entries are *receiver-relative* guard tokens: "mu" names the
// receiver's write lock and "mu:r" its read lock. A call site maps them
// back into the caller's frame through the callee's receiver
// expression: f.markDeadLocked() with a RequiresHeld of ["mu"] demands
// the key "f.mu" in the caller's held set.

// LockFact is the exported per-function lock-set summary.
type LockFact struct {
	// Acquires lists receiver-relative locks the function holds on every
	// return path without releasing (lock-wrapper helpers).
	Acquires []string `json:"acquires,omitempty"`
	// Releases lists receiver-relative locks the function releases
	// without having acquired them itself (unlock-wrapper helpers).
	Releases []string `json:"releases,omitempty"`
	// RequiresHeld lists receiver-relative locks the caller must hold
	// around the call ("mu" demands the write lock, "mu:r" is satisfied
	// by either half of an RWMutex).
	RequiresHeld []string `json:"requiresHeld,omitempty"`
}

// AFact marks LockFact as a fact.
func (*LockFact) AFact() {}

// readTokenSuffix marks the read half of an RWMutex in relative guard
// tokens ("mu:r") — see LockFact.
const readTokenSuffix = ":r"

// readKeySuffix marks the read half of an RWMutex in absolute held-set
// keys ("f.mu (read)") — shared with the locksafety CFG pass.
const readKeySuffix = " (read)"

// relToken builds a receiver-relative guard token.
func relToken(guard string, read bool) string {
	if read {
		return guard + readTokenSuffix
	}
	return guard
}

// splitToken decomposes a relative token into guard name and read flag.
func splitToken(tok string) (guard string, read bool) {
	if g, ok := strings.CutSuffix(tok, readTokenSuffix); ok {
		return g, true
	}
	return tok, false
}

// heldKey builds the absolute held-set key for base expression b and
// guard field g ("f.mu", "f.mu (read)"). It matches the key scheme of
// syncLockMethod so that directly-observed Lock calls and fact-mapped
// helper calls land in the same namespace.
func heldKey(base, guard string, read bool) string {
	k := base + "." + guard
	if read {
		k += readKeySuffix
	}
	return k
}

// tokenToKey maps a receiver-relative token into the caller's frame.
func tokenToKey(base, tok string) string {
	g, read := splitToken(tok)
	return heldKey(base, g, read)
}

// sortedTokens renders a token set as a sorted slice (stable facts and
// stable diagnostics).
func sortedTokens(set map[string]bool) []string {
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// describeToken renders a relative token for a diagnostic, prefixed
// with the call-site base expression: ("f", "mu") -> "f.mu.Lock()",
// ("f", "mu:r") -> "f.mu.RLock()".
func describeToken(base, tok string) string {
	g, read := splitToken(tok)
	if read {
		return base + "." + g + ".RLock()"
	}
	return base + "." + g + ".Lock()"
}

// heldSatisfies reports whether the held-set keys satisfy a need for
// base.guard: a write need requires the write key; a read need is
// satisfied by either half.
func heldSatisfies(held map[string]bool, base, guard string, read bool) bool {
	if held[heldKey(base, guard, false)] {
		return true
	}
	return read && held[heldKey(base, guard, true)]
}

// receiverOf returns the receiver variable and its printed name for a
// method declaration, or nil for plain functions and methods with an
// anonymous receiver.
func receiverOf(pass *Pass, fn *ast.FuncDecl) (*types.Var, string) {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil, ""
	}
	name := fn.Recv.List[0].Names[0]
	if name.Name == "_" {
		return nil, ""
	}
	v, _ := pass.Info.Defs[name].(*types.Var)
	if v == nil {
		return nil, ""
	}
	return v, name.Name
}

// callTarget resolves a call to (callee, base expression) where base is
// the printed receiver of a method call ("f" for f.markDead(...)).
// Plain function calls return base == "".
func callTarget(pass *Pass, call *ast.CallExpr) (*types.Func, string) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn, ""
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		if fn == nil {
			return nil, ""
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return fn, types.ExprString(fun.X)
		}
		return fn, "" // package-qualified plain function
	}
	return nil, ""
}

// RequiresHeldDirective marks a function that must be entered with the
// named receiver locks held:
//
//	//ecolint:requiresheld mu
//
// placed in the function's doc comment. Functions whose name ends in
// "Locked" carry the same contract implicitly, with the required guards
// inferred from the guarded fields they touch.
const RequiresHeldDirective = "//ecolint:requiresheld"

// requiresHeldArgs parses the directive out of a function's doc
// comment, returning the named guards and whether a directive was
// present at all (an argument-less directive means "infer").
func requiresHeldArgs(fn *ast.FuncDecl) ([]string, bool) {
	if fn.Doc == nil {
		return nil, false
	}
	for _, c := range fn.Doc.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, RequiresHeldDirective) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, RequiresHeldDirective))
		return strings.Fields(rest), true
	}
	return nil, false
}

// lockEvent is one held-set mutation observed while simulating a CFG
// node in source order: a direct sync.(RW)Mutex call, or the summary
// effect of a call into a function with a LockFact.
type lockEvent struct {
	pos     token.Pos
	acquire []string // absolute keys entering the held set
	release []string // absolute keys leaving the held set
}

// nodeLockEvents collects the lock events of one CFG node in position
// order. Function literals are skipped (they run later, if at all);
// deferred unlocks are skipped too — unlike the leak check, the
// guarded-access simulation must treat `defer mu.Unlock()` as holding
// the lock until the function returns.
func nodeLockEvents(pass *Pass, n ast.Node, facts func(fn *types.Func) *LockFact) []lockEvent {
	var events []lockEvent
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			if op, pos, ok := syncLockMethod(pass, x); ok {
				ev := lockEvent{pos: pos}
				if op.acquire {
					ev.acquire = []string{op.key}
				} else {
					ev.release = []string{op.key}
				}
				events = append(events, ev)
				return true
			}
			callee, base := callTarget(pass, x)
			if callee == nil || base == "" || facts == nil {
				return true
			}
			if lf := facts(callee); lf != nil && (len(lf.Acquires) > 0 || len(lf.Releases) > 0) {
				ev := lockEvent{pos: x.Pos()}
				for _, tok := range lf.Acquires {
					ev.acquire = append(ev.acquire, tokenToKey(base, tok))
				}
				for _, tok := range lf.Releases {
					ev.release = append(ev.release, tokenToKey(base, tok))
				}
				events = append(events, ev)
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// deferReleasedKeys collects the absolute keys a function body releases
// through defer statements (directly or via a deferred literal).
func deferReleasedKeys(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(x ast.Node) bool {
		d, ok := x.(*ast.DeferStmt)
		if !ok {
			return true
		}
		if op, _, ok := syncLockMethod(pass, d.Call); ok && !op.acquire {
			out[op.key] = true
		} else if lit, isLit := ast.Unparen(d.Call.Fun).(*ast.FuncLit); isLit {
			ast.Inspect(lit.Body, func(y ast.Node) bool {
				if call, isCall := y.(*ast.CallExpr); isCall {
					if op, _, ok := syncLockMethod(pass, call); ok && !op.acquire {
						out[op.key] = true
					}
				}
				return true
			})
		}
		return false
	})
	return out
}
