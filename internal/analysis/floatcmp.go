package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
)

// floatCmpPackages are the numerical-physics packages where exact float
// equality is almost always a latent bug: quantities there come out of
// transcendental math and accumulate rounding, so `==` silently stops
// matching after an innocent refactor.
var floatCmpPackages = map[string]bool{
	"physics":  true,
	"channel":  true,
	"geometry": true,
}

// FloatCmp flags == and != between floating-point operands in the physics,
// channel, and geometry packages. Comparisons against the literal zero are
// exempt: `cfg.SampleRate == 0` is the established "field not set" sentinel
// idiom and involves no accumulated rounding.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flags ==/!= on floating-point operands in physics, channel and geometry " +
		"(zero-sentinel comparisons exempt); compare with a tolerance instead",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	if !floatCmpPackages[path.Base(pass.Pkg.Path())] {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if !isFloat(pass.TypeOf(cmp.X)) || !isFloat(pass.TypeOf(cmp.Y)) {
				return true
			}
			if isZeroConst(pass, cmp.X) || isZeroConst(pass, cmp.Y) {
				return true
			}
			pass.Reportf(cmp.OpPos, "exact floating-point %s comparison; use a tolerance (math.Abs(a-b) < eps)", cmp.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isZeroConst(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return constant.Sign(tv.Value) == 0
}
