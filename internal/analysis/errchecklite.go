package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// errCheckVerbs are the function-name prefixes whose error results must not
// be dropped when the function comes from a wire-format package.
var errCheckVerbs = []string{
	"Encode", "Decode", "Write", "Read", "Send", "Recv", "Marshal", "Unmarshal",
}

// errCheckPkgSuffixes identify the wire-format packages. Suffix matching
// keeps the analyzer working in the golden-test fixtures, which mirror the
// real import paths under a testdata root.
var errCheckPkgSuffixes = []string{
	"internal/coding",
	"internal/shmwire",
}

// ErrCheckLite flags statements that call an encode/decode/read/write
// function from internal/coding or internal/shmwire and throw the returned
// error away (plain call statements, `defer`, and `go`). A dropped decode
// error turns a truncated or corrupted frame into silently wrong telemetry —
// the worst failure mode an SHM pipeline can have. Assigning the error to
// `_` is treated as an explicit, visible decision and is not flagged.
var ErrCheckLite = &Analyzer{
	Name: "errchecklite",
	Doc: "flags discarded error returns from internal/coding and internal/shmwire " +
		"encode/decode/read/write functions",
	Run: runErrCheckLite,
}

func runErrCheckLite(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || !isWireFormatFunc(fn) || !returnsError(fn) {
				return true
			}
			pass.Reportf(call.Pos(), "error returned by %s.%s is discarded", fn.Pkg().Name(), fn.Name())
			return true
		})
	}
}

// calleeFunc resolves the called function or method, or nil.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.Info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

func isWireFormatFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	pkgOK := false
	for _, suffix := range errCheckPkgSuffixes {
		if strings.HasSuffix(fn.Pkg().Path(), suffix) {
			pkgOK = true
			break
		}
	}
	if !pkgOK {
		return false
	}
	for _, verb := range errCheckVerbs {
		if strings.HasPrefix(fn.Name(), verb) {
			return true
		}
	}
	return false
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok {
			if named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return true
			}
		}
	}
	return false
}
