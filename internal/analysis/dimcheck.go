package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"ecocapsule/internal/analysis/cfg"
)

// UnitDirective declares the physical dimension of a parameter, result,
// struct field or package-level var/const:
//
//	//ecolint:unit <dim>                 on a field or var/const spec
//	//ecolint:unit <param> <dim>         in a function's doc comment
//	//ecolint:unit return <dim>          for the first result
//
// The dimension grammar is a product/quotient of base units with
// optional integer exponents:
//
//	hz | s | m | pa | v | j | w | db | dimensionless
//	m/s^2   v*s   j/s   pa·m
//
// hz and w are derived (hz = s^-1, w = j/s) so sample-count arithmetic
// (fs·t) and power-energy arithmetic (p·t = e) type-check without
// special cases. A slice or array annotation describes its elements.
const UnitDirective = "//ecolint:unit"

// dimAxes are the independent base dimensions of the algebra. Pressure,
// voltage and energy stay independent axes on purpose: pa = j/m³ is a
// physical identity the simulation never exploits, and collapsing it
// would let a stress slot absorb an energy density unnoticed.
var dimAxes = [...]string{"s", "m", "pa", "v", "j", "db"}

const (
	axS = iota
	axM
	axPa
	axV
	axJ
	axDb
	dimNAxes
)

type dimKind uint8

const (
	// dimBottom is "no information": it absorbs every operation and is
	// never reported against, so unannotated code stays silent.
	dimBottom dimKind = iota
	// dimScalar is a bare numeric literal: the multiplicative identity,
	// compatible with any dimension under + - and comparisons.
	dimScalar
	// dimVec is a concrete exponent vector; all-zero = dimensionless.
	dimVec
)

// dim is one lattice value of the dimension dataflow.
type dim struct {
	kind dimKind
	exp  [dimNAxes]int8
}

func (d dim) concrete() bool { return d.kind == dimVec }

// baseDim resolves one grammar token to its exponent vector.
func baseDim(name string) (d [dimNAxes]int8, ok bool) {
	switch name {
	case "dimensionless", "1":
	case "s":
		d[axS] = 1
	case "hz":
		d[axS] = -1
	case "m":
		d[axM] = 1
	case "pa":
		d[axPa] = 1
	case "v":
		d[axV] = 1
	case "j":
		d[axJ] = 1
	case "w":
		d[axJ], d[axS] = 1, -1
	case "db":
		d[axDb] = 1
	default:
		return d, false
	}
	return d, true
}

// parseDim parses the annotation grammar: factors joined by * or ·,
// with at most one / separating numerator from denominator, each
// factor base^exp.
func parseDim(text string) (dim, bool) {
	num, den, slash := strings.Cut(text, "/")
	d := dim{kind: dimVec}
	apply := func(part string, sign int) bool {
		for _, f := range strings.FieldsFunc(part, func(r rune) bool { return r == '*' || r == '·' }) {
			name, expStr, hasExp := strings.Cut(f, "^")
			e := 1
			if hasExp {
				v, err := strconv.Atoi(expStr)
				if err != nil || v == 0 {
					return false
				}
				e = v
			}
			b, ok := baseDim(name)
			if !ok {
				return false
			}
			for i := range d.exp {
				d.exp[i] += int8(sign*e) * b[i]
			}
		}
		return true
	}
	if num == "" || !apply(num, 1) {
		return dim{}, false
	}
	if slash && (den == "" || !apply(den, -1)) {
		return dim{}, false
	}
	return d, true
}

// dimAlias renders well-known exponent vectors by their familiar name.
var dimAlias = map[[dimNAxes]int8]string{}

func init() {
	for _, n := range []string{"dimensionless", "s", "hz", "m", "pa", "v", "j", "w", "db"} {
		b, _ := baseDim(n)
		if _, dup := dimAlias[b]; !dup {
			dimAlias[b] = n
		}
	}
}

func (d dim) String() string {
	switch d.kind {
	case dimBottom:
		return "unknown"
	case dimScalar:
		return "scalar"
	}
	if alias, ok := dimAlias[d.exp]; ok {
		return alias
	}
	var num, den []string
	for i, e := range d.exp {
		switch {
		case e > 0:
			num = append(num, axisPow(dimAxes[i], int(e)))
		case e < 0:
			den = append(den, axisPow(dimAxes[i], int(-e)))
		}
	}
	s := "1"
	if len(num) > 0 {
		s = strings.Join(num, "·")
	}
	if len(den) > 0 {
		s += "/" + strings.Join(den, "·")
	}
	return s
}

func axisPow(name string, e int) string {
	if e == 1 {
		return name
	}
	return name + "^" + strconv.Itoa(e)
}

// dimMul composes dimensions under multiplication.
func dimMul(a, b dim) dim {
	if a.kind == dimScalar {
		return b
	}
	if b.kind == dimScalar {
		return a
	}
	if a.kind == dimBottom || b.kind == dimBottom {
		return dim{}
	}
	out := dim{kind: dimVec}
	for i := range out.exp {
		out.exp[i] = a.exp[i] + b.exp[i]
	}
	return out
}

// dimDiv composes dimensions under division (scalar/x inverts x).
func dimDiv(a, b dim) dim {
	if b.kind == dimScalar {
		return a
	}
	if a.kind == dimBottom || b.kind == dimBottom {
		return dim{}
	}
	out := dim{kind: dimVec}
	for i := range out.exp {
		if a.kind == dimVec {
			out.exp[i] = a.exp[i] - b.exp[i]
		} else {
			out.exp[i] = -b.exp[i]
		}
	}
	return out
}

// dimAdd joins dimensions under + - and comparisons: compatible unless
// both sides are concrete and different.
func dimAdd(a, b dim) (dim, bool) {
	if a.kind == dimBottom || b.kind == dimBottom {
		return dim{}, true
	}
	if a.kind == dimScalar {
		return b, true
	}
	if b.kind == dimScalar {
		return a, true
	}
	if a.exp == b.exp {
		return a, true
	}
	return dim{}, false
}

// dimSqrt halves every exponent when all are even (sqrt(m²/s²) = m/s),
// otherwise the result is unknown.
func dimSqrt(d dim) dim {
	if d.kind != dimVec {
		return d
	}
	out := dim{kind: dimVec}
	for i, e := range d.exp {
		if e%2 != 0 {
			return dim{}
		}
		out.exp[i] = e / 2
	}
	return out
}

// UnitFact carries the //ecolint:unit annotations of one package-level
// object across package boundaries: Dim for vars and consts, Params and
// Results for functions (Results aligned with the result tuple, ""
// meaning unannotated), Fields for struct types (filed on the TypeName,
// keyed by field name).
type UnitFact struct {
	Dim     string            `json:"dim,omitempty"`
	Params  map[string]string `json:"params,omitempty"`
	Results []string          `json:"results,omitempty"`
	Fields  map[string]string `json:"fields,omitempty"`
}

// AFact marks UnitFact as a fact.
func (*UnitFact) AFact() {}

// DimCheck runs dimensional analysis over //ecolint:unit annotations.
// A Hz/seconds or pascal/volt mix-up compiles silently and poisons
// every downstream health grade; with the physics surface annotated,
// mul/div compose exponent vectors, add/sub/compare demand equal
// dimensions, and annotated signatures type-check call sites repo-wide
// through object facts.
var DimCheck = &Analyzer{
	Name:      "dimcheck",
	Version:   "1",
	UsesFacts: true,
	Doc: "propagates //ecolint:unit dimensions (hz, s, m, pa, v, j, w, db, products like m/s^2) " +
		"through expressions and flags mixed-unit additions, comparisons, arguments, returns and stores",
	Run: runDimCheck,
}

// funcUnits is one function's declared parameter/result dimensions.
type funcUnits struct {
	params    map[string]dim
	paramObjs map[types.Object]dim
	results   []dim
}

// unitTable holds the pass-local annotation tables plus caches of
// imported facts.
type unitTable struct {
	pass   *Pass
	vars   map[types.Object]dim
	fields map[*types.Var]dim
	funcs  map[*types.Func]*funcUnits

	importedObj   map[types.Object]dim // resolved var/const facts (dimBottom = none)
	importedType  map[*types.TypeName]*UnitFact
	importedFuncs map[*types.Func]*funcUnits // nil = no fact
}

// dimEnv is the dataflow lattice: the dimension of each local on every
// path reaching a point. Join is intersection-where-equal.
type dimEnv map[types.Object]dim

func copyDimEnv(env dimEnv) dimEnv {
	out := make(dimEnv, len(env))
	for k, v := range env {
		out[k] = v
	}
	return out
}

func joinDimEnv(dst, src dimEnv) (dimEnv, bool) {
	changed := false
	for k, v := range dst {
		if sv, ok := src[k]; !ok || sv != v {
			delete(dst, k)
			changed = true
		}
	}
	return dst, changed
}

// unitDirectivesIn lists every unit directive of a comment group with
// its position.
type unitDirective struct {
	args []string
	pos  token.Pos
}

func unitDirectivesIn(cg *ast.CommentGroup) []unitDirective {
	if cg == nil {
		return nil
	}
	var out []unitDirective
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, UnitDirective) {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(text, UnitDirective))
		out = append(out, unitDirective{args: strings.Fields(rest), pos: c.Pos()})
	}
	return out
}

// parseDeclaredDim parses the dim token of a field/var directive,
// reporting malformed grammar.
func (ut *unitTable) parseDeclaredDim(args []string, pos token.Pos) (dim, bool) {
	if len(args) == 0 {
		ut.pass.Reportf(pos, "unit directive is missing a dimension (//ecolint:unit <dim>)")
		return dim{}, false
	}
	d, ok := parseDim(args[0])
	if !ok {
		ut.pass.Reportf(pos, "unknown unit %q in //ecolint:unit directive (grammar: hz|s|m|pa|v|j|w|db|dimensionless with ^exp, ·/* products, one /)", args[0])
		return dim{}, false
	}
	return d, true
}

// collectUnits scans the package's declarations for unit annotations,
// fills the local tables and exports the corresponding facts.
func collectUnits(pass *Pass) *unitTable {
	ut := &unitTable{
		pass:          pass,
		vars:          make(map[types.Object]dim),
		fields:        make(map[*types.Var]dim),
		funcs:         make(map[*types.Func]*funcUnits),
		importedObj:   make(map[types.Object]dim),
		importedType:  make(map[*types.TypeName]*UnitFact),
		importedFuncs: make(map[*types.Func]*funcUnits),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				switch decl.Tok {
				case token.VAR, token.CONST:
					for _, spec := range decl.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						doc := vs.Doc
						if doc == nil && len(decl.Specs) == 1 {
							// Unparenthesized declaration: the doc
							// comment rides on the GenDecl.
							doc = decl.Doc
						}
						ut.collectValueSpec(vs, doc)
					}
				case token.TYPE:
					for _, spec := range decl.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if st, ok := ts.Type.(*ast.StructType); ok {
							ut.collectStructUnits(ts, st)
						}
					}
				}
			case *ast.FuncDecl:
				ut.collectFuncUnits(decl)
			}
		}
	}
	return ut
}

func (ut *unitTable) collectValueSpec(vs *ast.ValueSpec, doc *ast.CommentGroup) {
	dirs := unitDirectivesIn(doc)
	dirs = append(dirs, unitDirectivesIn(vs.Comment)...)
	if len(dirs) == 0 {
		return
	}
	d, ok := ut.parseDeclaredDim(dirs[0].args, dirs[0].pos)
	if !ok {
		return
	}
	for _, name := range vs.Names {
		obj := ut.pass.Info.Defs[name]
		if obj == nil {
			continue
		}
		ut.vars[obj] = d
		ut.pass.ExportObjectFact(obj, &UnitFact{Dim: d.String()})
	}
}

func (ut *unitTable) collectStructUnits(ts *ast.TypeSpec, st *ast.StructType) {
	fact := &UnitFact{Fields: make(map[string]string)}
	for _, field := range st.Fields.List {
		dirs := unitDirectivesIn(field.Doc)
		dirs = append(dirs, unitDirectivesIn(field.Comment)...)
		if len(dirs) == 0 {
			continue
		}
		d, ok := ut.parseDeclaredDim(dirs[0].args, dirs[0].pos)
		if !ok {
			continue
		}
		for _, name := range field.Names {
			if v, _ := ut.pass.Info.Defs[name].(*types.Var); v != nil {
				ut.fields[v] = d
				fact.Fields[name.Name] = d.String()
			}
		}
	}
	if len(fact.Fields) == 0 {
		return
	}
	if tn, _ := ut.pass.Info.Defs[ts.Name].(*types.TypeName); tn != nil {
		ut.pass.ExportObjectFact(tn, fact)
	}
}

func (ut *unitTable) collectFuncUnits(fd *ast.FuncDecl) {
	dirs := unitDirectivesIn(fd.Doc)
	if len(dirs) == 0 {
		return
	}
	obj, _ := ut.pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	sig, _ := obj.Type().(*types.Signature)
	if sig == nil {
		return
	}
	fu := &funcUnits{
		params:    make(map[string]dim),
		paramObjs: make(map[types.Object]dim),
		results:   make([]dim, sig.Results().Len()),
	}
	// Index the parameter idents of the declaration for env seeding.
	paramIdents := make(map[string]*ast.Ident)
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				paramIdents[name.Name] = name
			}
		}
	}
	for _, dir := range dirs {
		if len(dir.args) < 2 {
			ut.pass.Reportf(dir.pos, "unit directive on a function needs a target and a dimension (//ecolint:unit <param|return> <dim>)")
			continue
		}
		d, ok := parseDim(dir.args[1])
		if !ok {
			ut.pass.Reportf(dir.pos, "unknown unit %q in //ecolint:unit directive (grammar: hz|s|m|pa|v|j|w|db|dimensionless with ^exp, ·/* products, one /)", dir.args[1])
			continue
		}
		target := dir.args[0]
		if target == "return" {
			if len(fu.results) == 0 {
				ut.pass.Reportf(dir.pos, "unit directive annotates the return value of %s, which returns nothing", fd.Name.Name)
				continue
			}
			fu.results[0] = d
			continue
		}
		ident, ok := paramIdents[target]
		if !ok {
			ut.pass.Reportf(dir.pos, "unit directive names %q, which is not a parameter of %s", target, fd.Name.Name)
			continue
		}
		fu.params[target] = d
		if pobj := ut.pass.Info.Defs[ident]; pobj != nil {
			fu.paramObjs[pobj] = d
		}
	}
	if len(fu.params) == 0 && !anyConcrete(fu.results) {
		return
	}
	ut.funcs[obj] = fu
	fact := &UnitFact{Params: make(map[string]string), Results: make([]string, len(fu.results))}
	for name, d := range fu.params {
		fact.Params[name] = d.String()
	}
	for i, d := range fu.results {
		if d.concrete() {
			fact.Results[i] = d.String()
		}
	}
	ut.pass.ExportObjectFact(obj, fact)
}

func anyConcrete(dims []dim) bool {
	for _, d := range dims {
		if d.concrete() {
			return true
		}
	}
	return false
}

// importedVarDim resolves the declared dimension of an imported
// package-level var/const through its UnitFact.
func (ut *unitTable) importedVarDim(obj types.Object) (dim, bool) {
	if d, ok := ut.importedObj[obj]; ok {
		return d, d.kind != dimBottom
	}
	var fact UnitFact
	d := dim{}
	if ut.pass.ImportObjectFact(obj, &fact) && fact.Dim != "" {
		if parsed, ok := parseDim(fact.Dim); ok {
			d = parsed
		}
	}
	ut.importedObj[obj] = d
	return d, d.kind != dimBottom
}

// typeUnitFact fetches (caching) the UnitFact of a type name.
func (ut *unitTable) typeUnitFact(tn *types.TypeName) *UnitFact {
	if fact, ok := ut.importedType[tn]; ok {
		return fact
	}
	var f UnitFact
	var fact *UnitFact
	if ut.pass.ImportObjectFact(tn, &f) {
		fact = &f
	}
	ut.importedType[tn] = fact
	return fact
}

// fieldDimByName resolves the declared dimension of named's field,
// local table first, then the exported fact.
func (ut *unitTable) fieldDimByName(named *types.Named, name string) (dim, bool) {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return dim{}, false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != name {
			continue
		}
		if d, ok := ut.fields[f]; ok {
			return d, true
		}
		break
	}
	fact := ut.typeUnitFact(named.Obj())
	if fact == nil {
		return dim{}, false
	}
	text, ok := fact.Fields[name]
	if !ok {
		return dim{}, false
	}
	return parseDim(text)
}

// fieldDim resolves a selected field's dimension.
func (ut *unitTable) fieldDim(field *types.Var, recv types.Type) (dim, bool) {
	if d, ok := ut.fields[field]; ok {
		return d, true
	}
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return dim{}, false
	}
	return ut.fieldDimByName(named, field.Name())
}

// calleeUnits resolves a callee's declared units, local table first,
// then the exported fact.
func (ut *unitTable) calleeUnits(fn *types.Func) *funcUnits {
	if fu, ok := ut.funcs[fn]; ok {
		return fu
	}
	if fn.Pkg() == ut.pass.Pkg {
		return nil
	}
	if fu, ok := ut.importedFuncs[fn]; ok {
		return fu
	}
	var fact UnitFact
	var fu *funcUnits
	if ut.pass.ImportObjectFact(fn, &fact) && (len(fact.Params) > 0 || len(fact.Results) > 0) {
		fu = &funcUnits{params: make(map[string]dim), results: make([]dim, len(fact.Results))}
		for name, text := range fact.Params {
			if d, ok := parseDim(text); ok {
				fu.params[name] = d
			}
		}
		for i, text := range fact.Results {
			if text == "" {
				continue
			}
			if d, ok := parseDim(text); ok {
				fu.results[i] = d
			}
		}
	}
	ut.importedFuncs[fn] = fu
	return fu
}

// mathTransparent lists math functions whose result carries their
// (first or joined) argument's dimension.
var mathTransparentFirst = map[string]bool{
	"Abs": true, "Floor": true, "Ceil": true, "Round": true, "Trunc": true,
	"Mod": true, "Remainder": true, "Copysign": true, "Dim": true, "Nextafter": true,
}

var mathTransparentJoin = map[string]bool{
	"Min": true, "Max": true, "Hypot": true,
}

// dimOf computes an expression's dimension under env.
func (ut *unitTable) dimOf(e ast.Expr, env dimEnv) dim {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		if e.Kind == token.INT || e.Kind == token.FLOAT {
			return dim{kind: dimScalar}
		}
	case *ast.Ident:
		obj := ut.pass.Info.Uses[e]
		if obj == nil {
			obj = ut.pass.Info.Defs[e]
		}
		return ut.dimOfObject(obj, env)
	case *ast.SelectorExpr:
		if sel, ok := ut.pass.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if field, _ := sel.Obj().(*types.Var); field != nil {
				if d, ok := ut.fieldDim(field, sel.Recv()); ok {
					return d
				}
			}
			return dim{}
		}
		return ut.dimOfObject(ut.pass.Info.Uses[e.Sel], env)
	case *ast.IndexExpr:
		// An annotated slice/array describes its elements.
		return ut.dimOf(e.X, env)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return ut.dimOf(e.X, env)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.MUL:
			return dimMul(ut.dimOf(e.X, env), ut.dimOf(e.Y, env))
		case token.QUO:
			return dimDiv(ut.dimOf(e.X, env), ut.dimOf(e.Y, env))
		case token.ADD, token.SUB:
			d, _ := dimAdd(ut.dimOf(e.X, env), ut.dimOf(e.Y, env))
			return d
		}
	case *ast.CallExpr:
		return ut.dimOfCall(e, env)
	}
	return dim{}
}

func (ut *unitTable) dimOfObject(obj types.Object, env dimEnv) dim {
	if obj == nil {
		return dim{}
	}
	switch obj.(type) {
	case *types.Var, *types.Const:
	default:
		return dim{}
	}
	if d, ok := env[obj]; ok {
		return d
	}
	if d, ok := ut.vars[obj]; ok {
		return d
	}
	if obj.Pkg() != nil && obj.Pkg() != ut.pass.Pkg {
		if d, ok := ut.importedVarDim(obj); ok {
			return d
		}
	}
	// An unannotated named constant behaves like the literal it names.
	if c, ok := obj.(*types.Const); ok && isNumeric(c.Type()) {
		return dim{kind: dimScalar}
	}
	return dim{}
}

func (ut *unitTable) dimOfCall(call *ast.CallExpr, env dimEnv) dim {
	// Numeric conversions (float64(x), int(x)) are unit-transparent.
	if tv, ok := ut.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && isNumeric(tv.Type) && isNumeric(ut.pass.TypeOf(call.Args[0])) {
			return ut.dimOf(call.Args[0], env)
		}
		return dim{}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := ut.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "len" || id.Name == "cap" {
				return dim{kind: dimScalar} // counts combine freely
			}
			return dim{}
		}
	}
	fn := calleeFunc(ut.pass, call)
	if fn == nil {
		return dim{}
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "math" && len(call.Args) >= 1 {
		switch {
		case fn.Name() == "Sqrt":
			return dimSqrt(ut.dimOf(call.Args[0], env))
		case mathTransparentFirst[fn.Name()]:
			return ut.dimOf(call.Args[0], env)
		case mathTransparentJoin[fn.Name()] && len(call.Args) == 2:
			d, ok := dimAdd(ut.dimOf(call.Args[0], env), ut.dimOf(call.Args[1], env))
			if !ok {
				return dim{}
			}
			return d
		default:
			// Transcendentals (Sin, Exp, Log, Pow, ...) produce pure
			// numbers.
			return dim{kind: dimScalar}
		}
	}
	if fu := ut.calleeUnits(fn); fu != nil && len(fu.results) == 1 {
		return fu.results[0]
	}
	return dim{}
}

// applyNode updates env with the bindings one CFG node performs.
// Function literals are analyzed separately; a RangeStmt node carries
// its whole body in the AST but only the per-iteration binding executes
// in its block, so the body subtree is skipped.
func (ut *unitTable) applyNode(n ast.Node, env dimEnv) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		ut.applyRange(rs, env)
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			ut.applyAssign(x, env)
		case *ast.ValueSpec:
			for i, name := range x.Names {
				obj := ut.pass.Info.Defs[name]
				if obj == nil {
					continue
				}
				switch {
				case i < len(x.Values):
					env[obj] = ut.dimOf(x.Values[i], env)
				case len(x.Values) == 0 && isNumeric(obj.Type()):
					// Zero value: behaves like the literal 0.
					env[obj] = dim{kind: dimScalar}
				}
			}
		}
		return true
	})
}

func (ut *unitTable) applyRange(rs *ast.RangeStmt, env dimEnv) {
	bind := func(e ast.Expr, d dim) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return
		}
		obj := ut.pass.Info.Defs[id]
		if obj == nil {
			obj = ut.pass.Info.Uses[id]
		}
		if obj != nil {
			env[obj] = d
		}
	}
	if rs.Key != nil {
		bind(rs.Key, dim{kind: dimScalar}) // index / count
	}
	if rs.Value != nil {
		bind(rs.Value, ut.dimOf(rs.X, env)) // element carries the slice's dim
	}
}

func (ut *unitTable) applyAssign(a *ast.AssignStmt, env dimEnv) {
	set := func(lhs ast.Expr, d dim) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := ut.pass.Info.Defs[id]
		if obj == nil {
			obj = ut.pass.Info.Uses[id]
		}
		if obj == nil || ut.vars[obj].concrete() {
			return // package-level declarations keep their annotation
		}
		env[obj] = d
	}
	switch a.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(a.Lhs) == len(a.Rhs) {
			for i, lhs := range a.Lhs {
				set(lhs, ut.dimOf(a.Rhs[i], env))
			}
			return
		}
		// x, y := f(): spread the callee's declared result dims.
		if len(a.Rhs) == 1 {
			if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
				if fn := calleeFunc(ut.pass, call); fn != nil {
					if fu := ut.calleeUnits(fn); fu != nil {
						for i, lhs := range a.Lhs {
							if i < len(fu.results) {
								set(lhs, fu.results[i])
							} else {
								set(lhs, dim{})
							}
						}
						return
					}
				}
			}
			for _, lhs := range a.Lhs {
				set(lhs, dim{})
			}
		}
	case token.MUL_ASSIGN:
		if len(a.Lhs) == 1 {
			set(a.Lhs[0], dimMul(ut.dimOf(a.Lhs[0], env), ut.dimOf(a.Rhs[0], env)))
		}
	case token.QUO_ASSIGN:
		if len(a.Lhs) == 1 {
			set(a.Lhs[0], dimDiv(ut.dimOf(a.Lhs[0], env), ut.dimOf(a.Rhs[0], env)))
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(a.Lhs) == 1 {
			d, _ := dimAdd(ut.dimOf(a.Lhs[0], env), ut.dimOf(a.Rhs[0], env))
			set(a.Lhs[0], d)
		}
	}
}

// declaredTarget resolves the annotated dimension of a store target: an
// annotated package var or an annotated struct field.
func (ut *unitTable) declaredTarget(lhs ast.Expr) (dim, string, bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := ut.pass.Info.Uses[lhs]
		if obj == nil {
			return dim{}, "", false
		}
		if d, ok := ut.vars[obj]; ok && d.concrete() {
			return d, lhs.Name, true
		}
		if obj.Pkg() != nil && obj.Pkg() != ut.pass.Pkg {
			if d, ok := ut.importedVarDim(obj); ok && d.concrete() {
				return d, lhs.Name, true
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := ut.pass.Info.Selections[lhs]; ok {
			if sel.Kind() == types.FieldVal {
				if field, _ := sel.Obj().(*types.Var); field != nil {
					if d, ok := ut.fieldDim(field, sel.Recv()); ok && d.concrete() {
						return d, types.ExprString(lhs), true
					}
				}
			}
			return dim{}, "", false
		}
		// Not a selection: a qualified identifier (pkg.Var).
		if obj := ut.pass.Info.Uses[lhs.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg() != ut.pass.Pkg {
			if d, ok := ut.importedVarDim(obj); ok && d.concrete() {
				return d, types.ExprString(lhs), true
			}
		}
	}
	return dim{}, "", false
}

// checkNode reports the unit violations one CFG node commits under env.
func (ut *unitTable) checkNode(n ast.Node, env dimEnv, fu *funcUnits) {
	if rs, ok := n.(*ast.RangeStmt); ok {
		if rs.X == nil {
			return
		}
		n = rs.X // body statements are checked in their own blocks
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				dx, dy := ut.dimOf(x.X, env), ut.dimOf(x.Y, env)
				if _, ok := dimAdd(dx, dy); !ok {
					ut.pass.Reportf(x.OpPos, "unit mismatch: %s (%s) %s %s (%s)",
						types.ExprString(x.X), dx, x.Op, types.ExprString(x.Y), dy)
				}
			}
		case *ast.AssignStmt:
			ut.checkAssign(x, env)
		case *ast.CallExpr:
			ut.checkCall(x, env)
		case *ast.ReturnStmt:
			ut.checkReturn(x, env, fu)
		case *ast.CompositeLit:
			ut.checkCompositeLit(x, env)
		}
		return true
	})
}

func (ut *unitTable) checkAssign(a *ast.AssignStmt, env dimEnv) {
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if len(a.Lhs) == 1 {
			dx, dy := ut.dimOf(a.Lhs[0], env), ut.dimOf(a.Rhs[0], env)
			if _, ok := dimAdd(dx, dy); !ok {
				ut.pass.Reportf(a.TokPos, "unit mismatch: %s (%s) %s %s (%s)",
					types.ExprString(a.Lhs[0]), dx, a.Tok, types.ExprString(a.Rhs[0]), dy)
			}
		}
	case token.ASSIGN:
		if len(a.Lhs) != len(a.Rhs) {
			return
		}
		for i, lhs := range a.Lhs {
			want, name, ok := ut.declaredTarget(lhs)
			if !ok {
				continue
			}
			got := ut.dimOf(a.Rhs[i], env)
			if got.concrete() && got.exp != want.exp {
				ut.pass.Reportf(a.Rhs[i].Pos(), "cannot store %s value in %s (declared unit %s)", got, name, want)
			}
		}
	}
}

func (ut *unitTable) checkCall(call *ast.CallExpr, env dimEnv) {
	fn := calleeFunc(ut.pass, call)
	if fn == nil {
		return
	}
	fu := ut.calleeUnits(fn)
	if fu == nil || len(fu.params) == 0 {
		return
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
		if sig.Variadic() && i == sig.Params().Len()-1 {
			break
		}
		want, ok := fu.params[sig.Params().At(i).Name()]
		if !ok || !want.concrete() {
			continue
		}
		got := ut.dimOf(call.Args[i], env)
		if got.concrete() && got.exp != want.exp {
			ut.pass.Reportf(call.Args[i].Pos(), "argument %s to %s has unit %s, want %s",
				types.ExprString(call.Args[i]), qualifiedName(ut.pass, fn), got, want)
		}
	}
}

func (ut *unitTable) checkReturn(ret *ast.ReturnStmt, env dimEnv, fu *funcUnits) {
	if fu == nil || len(ret.Results) != len(fu.results) {
		return
	}
	for i, res := range ret.Results {
		want := fu.results[i]
		if !want.concrete() {
			continue
		}
		got := ut.dimOf(res, env)
		if got.concrete() && got.exp != want.exp {
			ut.pass.Reportf(res.Pos(), "return value has unit %s, want %s", got, want)
		}
	}
}

func (ut *unitTable) checkCompositeLit(lit *ast.CompositeLit, env dimEnv) {
	t := ut.pass.TypeOf(lit)
	if t == nil {
		return
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		want, ok := ut.fieldDimByName(named, key.Name)
		if !ok || !want.concrete() {
			continue
		}
		got := ut.dimOf(kv.Value, env)
		if got.concrete() && got.exp != want.exp {
			ut.pass.Reportf(kv.Value.Pos(), "cannot store %s value in field %s.%s (declared unit %s)",
				got, named.Obj().Name(), key.Name, want)
		}
	}
}

// checkFuncDims solves the dimension dataflow over one function body
// and replays it for position-ordered reporting.
func (ut *unitTable) checkFuncDims(body *ast.BlockStmt, fu *funcUnits) {
	g := cfg.New(body)
	entry := make(dimEnv)
	if fu != nil {
		for obj, d := range fu.paramObjs {
			entry[obj] = d
		}
	}
	res := cfg.Forward(g, cfg.Flow[dimEnv]{
		Entry: func() dimEnv { return copyDimEnv(entry) },
		Copy:  copyDimEnv,
		Join:  joinDimEnv,
		Transfer: func(b *cfg.Block, in dimEnv) dimEnv {
			out := copyDimEnv(in)
			for _, n := range b.Nodes {
				ut.applyNode(n, out)
			}
			return out
		},
	})
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		env := copyDimEnv(in)
		for _, n := range b.Nodes {
			ut.checkNode(n, env, fu)
			ut.applyNode(n, env)
		}
	}
}

func runDimCheck(pass *Pass) {
	ut := collectUnits(pass)
	if pass.FactsOnly {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			var fu *funcUnits
			if obj, _ := pass.Info.Defs[fd.Name].(*types.Func); obj != nil {
				fu = ut.funcs[obj]
			}
			ut.checkFuncDims(fd.Body, fu)
			// Function literals run as independent functions: their
			// parameters cannot carry directives, but annotated fields,
			// vars and signatures still bind inside them.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					ut.checkFuncDims(lit.Body, nil)
				}
				return true
			})
		}
	}
}
