package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Options configures one driver run.
type Options struct {
	// Dir is the working directory for `go list`; "" means the current
	// directory.
	Dir string
	// Analyzers is the suite to run; nil means All().
	Analyzers []*Analyzer
	// IncludeTests folds each target package's _test.go files into the
	// analysis: in-package test files are merged into the package
	// (mirroring how `go test` compiles them) and external _test
	// packages are checked as their own unit.
	IncludeTests bool
	// CacheDir enables the on-disk result cache when non-empty.
	CacheDir string
	// Parallelism bounds the worker pool; <= 0 means GOMAXPROCS. 1
	// gives a fully sequential run (the reference the parallel run is
	// tested against).
	Parallelism int
}

// Stats reports what one run did.
type Stats struct {
	// Targets is the number of requested (non-dependency) packages.
	Targets int
	// CacheHits / CacheMisses count target packages served from /
	// missing the result cache. Without a cache every target is a miss.
	CacheHits   int
	CacheMisses int
	// UnitsChecked counts type-checked units (stdlib deps included);
	// a fully warm run checks zero.
	UnitsChecked int
}

// Run lists the patterns, analyzes every target package with the
// analyzers — in dependency order, in parallel, consulting the result
// cache — and returns the surviving diagnostics in a deterministic
// total order. It is the engine behind cmd/ecolint and verify.sh.
func Run(opts Options, patterns ...string) ([]Diagnostic, *Stats, error) {
	if opts.Analyzers == nil {
		opts.Analyzers = All()
	}
	if opts.Parallelism <= 0 {
		opts.Parallelism = runtime.GOMAXPROCS(0)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	r := &runner{
		opts:   opts,
		fset:   token.NewFileSet(),
		meta:   make(map[string]*listedPackage),
		vendor: make(map[string]string),
		hashes: make(map[string]string),
		types:  make(map[string]*types.Package),
		parsed: make(map[string][]*ast.File),
		diags:  make(map[string][]Diagnostic),
		facts:  NewFacts(),
		stats:  &Stats{},
	}
	if opts.CacheDir != "" {
		cache, err := newResultCache(opts.CacheDir)
		if err != nil {
			return nil, nil, err
		}
		r.cache = cache
	}
	diags, err := r.run(patterns)
	if err != nil {
		return nil, nil, err
	}
	return diags, r.stats, nil
}

type runner struct {
	opts  Options
	fset  *token.FileSet
	cache *resultCache
	facts *Facts
	stats *Stats

	meta    map[string]*listedPackage
	targets []string          // import paths of requested packages, listing order
	vendor  map[string]string // source import string -> vendored import path
	hashes  map[string]string // memoized pkgHash results (path or path+"+test")

	mu     sync.RWMutex
	types  map[string]*types.Package // completed base units
	parsed map[string][]*ast.File    // base-unit ASTs, for test-unit reuse
	diags  map[string][]Diagnostic   // fresh diagnostics per module package

	firstErr atomic.Pointer[runError]
}

type runError struct{ err error }

func (r *runner) fail(err error) {
	r.firstErr.CompareAndSwap(nil, &runError{err})
}

func (r *runner) failed() bool { return r.firstErr.Load() != nil }

// run drives the five phases: list, hash, cache probe, parallel
// check+analyze, merge.
func (r *runner) run(patterns []string) ([]Diagnostic, error) {
	if err := r.list(patterns); err != nil {
		return nil, err
	}
	useFacts := false
	for _, a := range r.opts.Analyzers {
		if a.UsesFacts {
			useFacts = true
		}
	}

	// Cache probe: decide which module packages still need analysis.
	needFull := make(map[string]bool)  // full analysis (targets)
	needFacts := make(map[string]bool) // facts-only (module deps)
	hits := make(map[string]*cacheEntry)
	for _, path := range r.targets {
		p := r.meta[path]
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", path, p.Error.Err)
		}
		if e := r.probe(p, false); e != nil {
			hits[path] = e
			r.stats.CacheHits++
		} else {
			needFull[path] = true
			r.stats.CacheMisses++
		}
	}
	if useFacts {
		for _, p := range r.meta {
			if p.Standard || isTarget(r.targets, p.ImportPath) {
				continue
			}
			if !r.moduleDepOfTargets(p.ImportPath) {
				continue
			}
			if e := r.probe(p, true); e != nil {
				hits[p.ImportPath] = e
			} else {
				needFacts[p.ImportPath] = true
			}
		}
	}
	// Restore cached facts before any analysis runs.
	for path, e := range hits {
		r.facts.AddSerialized(path, e.Facts)
	}

	if len(needFull)+len(needFacts) > 0 {
		if err := r.checkAndAnalyze(needFull, needFacts); err != nil {
			return nil, err
		}
	}

	// Merge: cached + fresh diagnostics for targets only.
	var out []Diagnostic
	for _, path := range r.targets {
		if e, ok := hits[path]; ok && !e.FactsOnly {
			out = append(out, fromCachedDiags(e.Diags)...)
			continue
		}
		r.mu.RLock()
		out = append(out, r.diags[path]...)
		r.mu.RUnlock()
	}
	sortDiagnostics(out)
	return out, nil
}

// list runs go list over the patterns, then closes the metadata over
// test imports (go list -deps does not follow them) so that every
// package the run can possibly type-check is known up front.
func (r *runner) list(patterns []string) error {
	listed, err := goListRaw(r.opts.Dir, patterns...)
	if err != nil {
		return err
	}
	for _, p := range listed {
		if _, ok := r.meta[p.ImportPath]; !ok {
			r.meta[p.ImportPath] = p
		}
		if !p.DepOnly && !p.Standard {
			if !isTarget(r.targets, p.ImportPath) {
				r.targets = append(r.targets, p.ImportPath)
			}
		}
	}
	r.stats.Targets = len(r.targets)
	if len(r.targets) == 0 {
		return fmt.Errorf("analysis: patterns %v matched no packages", patterns)
	}
	if r.opts.IncludeTests {
		for {
			var missing []string
			seen := make(map[string]bool)
			for _, path := range r.targets {
				p := r.meta[path]
				for _, imp := range append(append([]string(nil), p.TestImports...), p.XTestImports...) {
					imp = r.resolveImport(imp)
					if imp == "C" || imp == "unsafe" {
						continue
					}
					if _, ok := r.meta[imp]; !ok && !seen[imp] {
						seen[imp] = true
						missing = append(missing, imp)
					}
				}
			}
			if len(missing) == 0 {
				break
			}
			sort.Strings(missing)
			extra, err := goListRaw(r.opts.Dir, missing...)
			if err != nil {
				return err
			}
			for _, p := range extra {
				if _, ok := r.meta[p.ImportPath]; !ok {
					r.meta[p.ImportPath] = p
				}
			}
			// Anything still missing next iteration is a real error; the
			// loop terminates because meta only grows.
		}
	}
	// Map vendored stdlib dependencies (ImportPath "vendor/golang.org/x/...")
	// back to the import strings that appear in source.
	for path := range r.meta {
		if trimmed, ok := strings.CutPrefix(path, "vendor/"); ok {
			r.vendor[trimmed] = path
		}
	}
	return nil
}

func isTarget(targets []string, path string) bool {
	for _, t := range targets {
		if t == path {
			return true
		}
	}
	return false
}

// resolveImport maps a source import string to the listed import path
// (identity except for vendored stdlib).
func (r *runner) resolveImport(imp string) string {
	if _, ok := r.meta[imp]; ok {
		return imp
	}
	if v, ok := r.vendor[imp]; ok {
		return v
	}
	return imp
}

// moduleDepOfTargets reports whether path is reachable from any target
// through regular or (when tests are included) test imports.
func (r *runner) moduleDepOfTargets(path string) bool {
	seen := make(map[string]bool)
	var visit func(string) bool
	visit = func(at string) bool {
		if at == path {
			return true
		}
		if seen[at] {
			return false
		}
		seen[at] = true
		p := r.meta[at]
		if p == nil || p.Standard {
			return false
		}
		for _, imp := range r.importsOf(p, r.opts.IncludeTests && isTarget(r.targets, at)) {
			if visit(imp) {
				return true
			}
		}
		return false
	}
	for _, t := range r.targets {
		if visit(t) {
			return true
		}
	}
	return false
}

// importsOf returns the resolved dependency paths of p, optionally
// including its test imports, with "C" and "unsafe" dropped.
func (r *runner) importsOf(p *listedPackage, withTests bool) []string {
	var raw []string
	raw = append(raw, p.Imports...)
	if withTests {
		raw = append(raw, p.TestImports...)
		raw = append(raw, p.XTestImports...)
	}
	seen := make(map[string]bool)
	var out []string
	for _, imp := range raw {
		imp = r.resolveImport(imp)
		if imp == "C" || imp == "unsafe" || imp == p.ImportPath || seen[imp] {
			continue
		}
		seen[imp] = true
		out = append(out, imp)
	}
	sort.Strings(out)
	return out
}

// probe checks the result cache for a usable entry for p. factsOK
// accepts facts-only entries (dependency packages).
func (r *runner) probe(p *listedPackage, factsOK bool) *cacheEntry {
	if r.cache == nil {
		return nil
	}
	key, err := r.pkgHash(p, r.withTests(p))
	if err != nil {
		return nil
	}
	e := r.cache.get(key, p.ImportPath)
	if e == nil {
		return nil
	}
	if e.FactsOnly && !factsOK {
		return nil
	}
	return e
}

// withTests reports whether p's analysis unit includes its test files.
func (r *runner) withTests(p *listedPackage) bool {
	return r.opts.IncludeTests && isTarget(r.targets, p.ImportPath) &&
		len(p.TestGoFiles)+len(p.XTestGoFiles) > 0
}

// pkgHash computes the content-addressed cache key of p: toolchain,
// analyzer fingerprint, file contents and all dependency hashes.
// Results are memoized; the module import graph is acyclic so the
// recursion terminates (test imports are only followed at the top
// level, which is what breaks the classic tests-import-a-helper-that-
// imports-us cycle).
func (r *runner) pkgHash(p *listedPackage, withTests bool) (string, error) {
	memoKey := p.ImportPath
	if withTests {
		memoKey += "+test"
	}
	if h, ok := r.hashes[memoKey]; ok {
		return h, nil
	}
	h := sha256.New()
	fmt.Fprintf(h, "ecolint/%d\n%s\n%s\n", cacheSchema, toolchainFingerprint(), analyzersFingerprint(r.opts.Analyzers))
	fmt.Fprintf(h, "pkg %s tests=%v\n", p.ImportPath, withTests)
	files := append([]string(nil), p.GoFiles...)
	if withTests {
		files = append(files, p.TestGoFiles...)
		files = append(files, p.XTestGoFiles...)
	}
	for _, name := range files {
		fh, err := hashFile(filepath.Join(p.Dir, name))
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "file %s %s\n", name, fh)
	}
	for _, imp := range r.importsOf(p, withTests) {
		dep := r.meta[imp]
		if dep == nil {
			return "", fmt.Errorf("analysis: dependency %q of %s was never listed", imp, p.ImportPath)
		}
		if dep.Standard {
			fmt.Fprintf(h, "dep std:%s\n", imp)
			continue
		}
		dh, err := r.pkgHash(dep, false)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "dep %s %s\n", imp, dh)
	}
	sum := hex.EncodeToString(h.Sum(nil))
	r.hashes[memoKey] = sum
	return sum, nil
}

// unit is one node of the parallel schedule: a package to type-check
// (base) or a package's test variants to check and analyze (test).
type unit struct {
	p    *listedPackage
	test bool

	// analysis placement, decided at graph-build time:
	analyzeFull  bool // run the full suite (reporting) in this unit
	analyzeFacts bool // run fact-producing analyzers quietly in this unit
	writeEntry   bool // persist the package's cache entry after this unit

	nDeps      atomic.Int32
	dependents []*unit
}

// checkAndAnalyze builds the unit graph for everything that needs
// type-checking and pumps it through a dependency-ordered worker pool.
func (r *runner) checkAndAnalyze(needFull, needFacts map[string]bool) error {
	// Close the base-unit set over imports.
	needCheck := make(map[string]bool)
	var addCheck func(path string)
	addCheck = func(path string) {
		if needCheck[path] {
			return
		}
		p := r.meta[path]
		if p == nil {
			return
		}
		needCheck[path] = true
		for _, imp := range r.importsOf(p, false) {
			addCheck(imp)
		}
	}
	for path := range needFull {
		addCheck(path)
		if r.withTests(r.meta[path]) {
			for _, imp := range r.importsOf(r.meta[path], true) {
				addCheck(imp)
			}
		}
	}
	for path := range needFacts {
		addCheck(path)
	}

	base := make(map[string]*unit, len(needCheck))
	var units []*unit
	paths := make([]string, 0, len(needCheck))
	for path := range needCheck {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		u := &unit{p: r.meta[path]}
		base[path] = u
		units = append(units, u)
	}
	// Analysis placement.
	testUnits := make(map[string]*unit)
	for _, path := range paths {
		p := r.meta[path]
		u := base[path]
		switch {
		case needFull[path] && r.withTests(p):
			// Diagnostics come from the test variants; the base unit
			// still exports facts early so dependents need not wait for
			// the (heavier) test unit.
			u.analyzeFacts = true
			tu := &unit{p: p, test: true, analyzeFull: true, writeEntry: true}
			testUnits[path] = tu
			units = append(units, tu)
		case needFull[path]:
			u.analyzeFull = true
			u.writeEntry = true
		case needFacts[path]:
			u.analyzeFacts = true
			u.writeEntry = true
		}
	}
	// Edges.
	link := func(from, to *unit) {
		to.dependents = append(to.dependents, from)
		from.nDeps.Add(1)
	}
	for _, path := range paths {
		u := base[path]
		for _, imp := range r.importsOf(u.p, false) {
			if dep, ok := base[imp]; ok {
				link(u, dep)
			}
		}
	}
	for path, tu := range testUnits {
		link(tu, base[path])
		for _, imp := range r.importsOf(tu.p, true) {
			if dep, ok := base[imp]; ok && imp != path {
				link(tu, dep)
			}
		}
	}

	// Dependency-ordered worker pool.
	ready := make(chan *unit, len(units))
	var pending atomic.Int32
	pending.Store(int32(len(units)))
	for _, u := range units {
		if u.nDeps.Load() == 0 {
			ready <- u
		}
	}
	if len(units) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	workers := r.opts.Parallelism
	if workers > len(units) {
		workers = len(units)
	}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range ready {
				if !r.failed() {
					if err := r.process(u); err != nil {
						r.fail(err)
					}
				}
				for _, d := range u.dependents {
					if d.nDeps.Add(-1) == 0 {
						ready <- d
					}
				}
				if pending.Add(-1) == 0 {
					close(ready)
				}
			}
		}()
	}
	wg.Wait()
	if e := r.firstErr.Load(); e != nil {
		return e.err
	}
	return nil
}

// process runs one unit: parse, type-check, optionally analyze,
// optionally persist the package's cache entry.
func (r *runner) process(u *unit) error {
	if u.test {
		return r.processTestUnit(u)
	}
	return r.processBaseUnit(u)
}

// newInfo returns a fresh types.Info with every map the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// importer resolves import strings against completed base units. The
// scheduler guarantees every dependency finished first, so a miss is a
// driver bug, not a race.
func (r *runner) importer() types.Importer {
	return importerFunc(func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		path = r.resolveImport(path)
		r.mu.RLock()
		tpkg, ok := r.types[path]
		r.mu.RUnlock()
		if !ok {
			return nil, fmt.Errorf("analysis: import %q not yet checked (scheduler bug?)", path)
		}
		return tpkg, nil
	})
}

// parseFiles parses the named files of p into the shared (thread-safe)
// FileSet.
func (r *runner) parseFiles(p *listedPackage, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(r.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// check type-checks files as package path, tolerating errors only for
// stdlib packages (compiler intrinsics don't all type-check from
// source; their declarations — all importers need — still do).
func (r *runner) check(path string, p *listedPackage, files []*ast.File) (*types.Package, *types.Info, error) {
	info := newInfo()
	conf := types.Config{
		Importer: r.importer(),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
		Error:    func(error) {},
	}
	tpkg, err := conf.Check(path, r.fset, files, info)
	if err != nil && !p.Standard {
		return nil, nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return tpkg, info, nil
}

func (r *runner) processBaseUnit(u *unit) error {
	p := u.p
	files, err := r.parseFiles(p, p.GoFiles)
	if err != nil {
		return err
	}
	tpkg, info, err := r.check(p.ImportPath, p, files)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.types[p.ImportPath] = tpkg
	r.parsed[p.ImportPath] = files
	r.stats.UnitsChecked++
	r.mu.Unlock()

	if !u.analyzeFull && !u.analyzeFacts {
		return nil
	}
	pkg := &Package{Path: p.ImportPath, Dir: p.Dir, Fset: r.fset, Files: files, Types: tpkg, Info: info, Standard: p.Standard}
	diags := analyzeUnit(pkg, r.opts.Analyzers, r.facts, !u.analyzeFull)
	if u.analyzeFull {
		r.mu.Lock()
		r.diags[p.ImportPath] = append(r.diags[p.ImportPath], diags...)
		r.mu.Unlock()
	}
	if u.writeEntry {
		return r.persist(p, !u.analyzeFull)
	}
	return nil
}

func (r *runner) processTestUnit(u *unit) error {
	p := u.p
	r.mu.RLock()
	baseFiles := r.parsed[p.ImportPath]
	r.mu.RUnlock()

	// In-package test files merge into the package, mirroring `go test`.
	if len(p.TestGoFiles) > 0 {
		testFiles, err := r.parseFiles(p, p.TestGoFiles)
		if err != nil {
			return err
		}
		files := append(append([]*ast.File(nil), baseFiles...), testFiles...)
		tpkg, info, err := r.check(p.ImportPath, p, files)
		if err != nil {
			return err
		}
		pkg := &Package{Path: p.ImportPath, Dir: p.Dir, Fset: r.fset, Files: files, Types: tpkg, Info: info}
		r.recordDiags(p.ImportPath, analyzeUnit(pkg, r.opts.Analyzers, r.facts, false))
	} else {
		// No in-package test files: the base unit's files are the
		// package's full source; analyze them here (the base unit only
		// exported facts).
		r.mu.RLock()
		tpkg := r.types[p.ImportPath]
		r.mu.RUnlock()
		info := newInfo()
		conf := types.Config{Importer: r.importer(), Sizes: types.SizesFor("gc", runtime.GOARCH), Error: func(error) {}}
		if _, err := conf.Check(p.ImportPath, r.fset, baseFiles, info); err != nil {
			return fmt.Errorf("analysis: type-checking %s: %w", p.ImportPath, err)
		}
		pkg := &Package{Path: p.ImportPath, Dir: p.Dir, Fset: r.fset, Files: baseFiles, Types: tpkg, Info: info}
		r.recordDiags(p.ImportPath, analyzeUnit(pkg, r.opts.Analyzers, r.facts, false))
	}

	// External _test package (package foo_test).
	if len(p.XTestGoFiles) > 0 {
		xFiles, err := r.parseFiles(p, p.XTestGoFiles)
		if err != nil {
			return err
		}
		xPath := p.ImportPath + "_test"
		tpkg, info, err := r.check(xPath, p, xFiles)
		if err != nil {
			return err
		}
		pkg := &Package{Path: xPath, Dir: p.Dir, Fset: r.fset, Files: xFiles, Types: tpkg, Info: info}
		r.recordDiags(p.ImportPath, analyzeUnit(pkg, r.opts.Analyzers, r.facts, false))
	}
	r.mu.Lock()
	r.stats.UnitsChecked++
	r.mu.Unlock()
	if u.writeEntry {
		return r.persist(p, false)
	}
	return nil
}

func (r *runner) recordDiags(path string, diags []Diagnostic) {
	r.mu.Lock()
	r.diags[path] = append(r.diags[path], diags...)
	r.mu.Unlock()
}

// persist writes the package's cache entry (diagnostics + exported
// facts) under its content hash.
func (r *runner) persist(p *listedPackage, factsOnly bool) error {
	if r.cache == nil {
		return nil
	}
	key, err := r.pkgHashLocked(p, r.withTests(p))
	if err != nil {
		return err
	}
	r.mu.RLock()
	diags := append([]Diagnostic(nil), r.diags[p.ImportPath]...)
	r.mu.RUnlock()
	sortDiagnostics(diags)
	e := &cacheEntry{
		Package:   p.ImportPath,
		FactsOnly: factsOnly,
		Diags:     toCachedDiags(diags),
		Facts:     r.facts.PackageFacts(p.ImportPath),
	}
	if err := r.cache.put(key, e); err != nil {
		return fmt.Errorf("analysis: writing cache entry for %s: %w", p.ImportPath, err)
	}
	return nil
}

// pkgHashLocked guards the hash memo for calls from worker goroutines.
var hashMu sync.Mutex

func (r *runner) pkgHashLocked(p *listedPackage, withTests bool) (string, error) {
	hashMu.Lock()
	defer hashMu.Unlock()
	return r.pkgHash(p, withTests)
}

// ModuleCacheDir returns the conventional cache location for the
// module rooted at dir: <dir>/.ecolint-cache.
func ModuleCacheDir(dir string) string {
	return filepath.Join(dir, ".ecolint-cache")
}

// FormatText renders diagnostics in the classic `file:line: analyzer:
// message` form, one per line.
func FormatText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
}
