package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ecocapsule/internal/analysis/cfg"
)

// ClosureCapture audits the bodies of asynchronously-executed closures:
// `go func(){...}()` statements and conc.For body literals. Two classes
// of finding:
//
//   - capture of an enclosing loop variable. Per-iteration loop
//     variables make this memory-safe on modern toolchains, but the
//     fork-join code in this repository owes callers a determinism
//     contract (see internal/conc): a body closure must depend only on
//     its index argument, never on loop state threaded in by capture,
//     or a future refactor of the loop silently changes what the
//     workers observe. Pass the value as an argument instead.
//
//   - mutation of captured shared state with no lock held at the write.
//     The per-index result-slot pattern (out[i] = ... where i is the
//     closure's own parameter or local) is recognised and allowed; map
//     writes never are — concurrent map writes fault the runtime even
//     on disjoint keys.
//
// Writes that happen while any mutex is held (directly or through a
// helper carrying a LockFact) are considered synchronised; guardedby
// checks that it is the *right* mutex.
var ClosureCapture = &Analyzer{
	Name:      "closurecapture",
	Version:   "1",
	UsesFacts: true,
	Doc: "flags goroutine and conc.For body closures that capture loop variables or " +
		"mutate captured shared state without synchronization",
	Run: runClosureCapture,
}

// concForFunc reports whether a call targets conc.For. The path is
// matched by suffix so the golden fixture can supply its own stub under
// testdata/src/closurecapture/internal/conc.
func concForFunc(pass *Pass, call *ast.CallExpr) bool {
	fn, _ := callTarget(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Name() == "For" && strings.HasSuffix(fn.Pkg().Path(), "internal/conc")
}

// asyncClosure is one closure that will run on another goroutine.
type asyncClosure struct {
	lit  *ast.FuncLit
	kind string // "goroutine" or "conc.For body"
	// loopVars holds the loop variables of the loops enclosing the
	// launch site, if any.
	loopVars map[types.Object]bool
}

// loopVarsOf extracts the iteration variables a loop statement defines.
func loopVarsOf(pass *Pass, n ast.Node, into map[types.Object]bool) {
	addIdent := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.Info.Defs[id]; obj != nil {
				into[obj] = true
			}
		}
	}
	switch n := n.(type) {
	case *ast.RangeStmt:
		if n.Tok == token.DEFINE {
			addIdent(n.Key)
			if n.Value != nil {
				addIdent(n.Value)
			}
		}
	case *ast.ForStmt:
		if init, ok := n.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			for _, lhs := range init.Lhs {
				addIdent(lhs)
			}
		}
	}
}

// collectAsyncClosures walks one function body tracking the enclosing
// loop stack, and returns every go-statement literal and conc.For body
// literal with the loop variables in scope at its launch site.
func collectAsyncClosures(pass *Pass, body *ast.BlockStmt) []asyncClosure {
	var out []asyncClosure
	var loopStack []map[types.Object]bool

	currentLoopVars := func() map[types.Object]bool {
		vars := make(map[types.Object]bool)
		for _, frame := range loopStack {
			for obj := range frame {
				vars[obj] = true
			}
		}
		return vars
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.RangeStmt, *ast.ForStmt:
			frame := make(map[types.Object]bool)
			loopVarsOf(pass, n, frame)
			loopStack = append(loopStack, frame)
			ast.Inspect(n, func(x ast.Node) bool {
				if x == n {
					return true
				}
				switch x.(type) {
				case *ast.RangeStmt, *ast.ForStmt, *ast.GoStmt, *ast.CallExpr:
					walk(x)
					return false
				}
				return true
			})
			loopStack = loopStack[:len(loopStack)-1]
			return
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, asyncClosure{lit: lit, kind: "goroutine", loopVars: currentLoopVars()})
				walk(lit.Body) // nested launches inside the closure
				return
			}
			walk(n.Call)
			return
		case *ast.CallExpr:
			if concForFunc(pass, n) && len(n.Args) == 2 {
				if lit, ok := ast.Unparen(n.Args[1]).(*ast.FuncLit); ok {
					out = append(out, asyncClosure{lit: lit, kind: "conc.For body", loopVars: currentLoopVars()})
					walk(n.Args[0])
					walk(lit.Body)
					return
				}
			}
		}
		ast.Inspect(n, func(x ast.Node) bool {
			if x == n {
				return true
			}
			switch x.(type) {
			case *ast.RangeStmt, *ast.ForStmt, *ast.GoStmt, *ast.CallExpr:
				walk(x)
				return false
			}
			return true
		})
	}
	walk(body)
	return out
}

// capturedWrite is one mutation of captured state inside an async
// closure.
type capturedWrite struct {
	pos  token.Pos
	expr ast.Expr
	obj  types.Object
	kind string // "variable", "map", "field"
}

// closureWrites collects the writes inside lit whose target is rooted
// outside the literal: assignments, ++/--, and delete(). Nested function
// literals are skipped (each is audited on its own if launched).
// Safe per-index slot writes (slice index computed from closure-local
// state) are filtered out; map writes never are.
func closureWrites(pass *Pass, lit *ast.FuncLit) []capturedWrite {
	declaredOutside := func(obj types.Object) bool {
		if obj == nil || obj.Pos() == token.NoPos {
			return false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}
	localIndex := func(e ast.Expr) bool {
		obj := rootObject(pass, e)
		if obj == nil {
			// Literal or computed index: treat constants as local.
			_, isLit := ast.Unparen(e).(*ast.BasicLit)
			return isLit
		}
		return !declaredOutside(obj)
	}

	var writes []capturedWrite
	var classify func(e ast.Expr, pos token.Pos)
	classify = func(e ast.Expr, pos token.Pos) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := pass.Info.Uses[e]
			if obj == nil {
				obj = pass.Info.Defs[e]
			}
			if declaredOutside(obj) {
				writes = append(writes, capturedWrite{pos: e.Pos(), expr: e, obj: obj, kind: "variable"})
			}
		case *ast.IndexExpr:
			root := rootObject(pass, e.X)
			if !declaredOutside(root) {
				return
			}
			if t := pass.Info.TypeOf(e.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					writes = append(writes, capturedWrite{pos: e.Pos(), expr: e.X, obj: root, kind: "map"})
					return
				}
			}
			// Slice/array slot: safe when the index is closure-local
			// (the conc.For per-index result-slot pattern).
			if !localIndex(e.Index) {
				writes = append(writes, capturedWrite{pos: e.Pos(), expr: e.X, obj: root, kind: "variable"})
			}
		case *ast.StarExpr:
			if root := rootObject(pass, e.X); declaredOutside(root) {
				writes = append(writes, capturedWrite{pos: e.Pos(), expr: e.X, obj: root, kind: "variable"})
			}
		case *ast.SelectorExpr:
			if sel, ok := pass.Info.Selections[e]; !ok || sel.Kind() != types.FieldVal {
				return
			}
			if root := rootObject(pass, e.X); declaredOutside(root) {
				writes = append(writes, capturedWrite{pos: e.Pos(), expr: e, obj: root, kind: "field"})
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return n == lit
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				classify(lhs, n.Pos())
			}
		case *ast.IncDecStmt:
			classify(n.X, n.Pos())
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if root := rootObject(pass, n.Args[0]); root != nil {
					if obj := root; obj.Pos() != token.NoPos && (obj.Pos() < lit.Pos() || obj.Pos() > lit.End()) {
						writes = append(writes, capturedWrite{pos: n.Pos(), expr: n.Args[0], obj: obj, kind: "map"})
					}
				}
			}
		}
		return true
	})
	sort.Slice(writes, func(i, j int) bool { return writes[i].pos < writes[j].pos })
	return writes
}

// heldAtPositions solves the must-held flow over the closure body and
// returns a predicate reporting whether any lock is held at a position.
// A closure starts with nothing held — goroutines do not inherit their
// spawner's locks.
func heldAtPositions(pass *Pass, lit *ast.FuncLit, resolver func(*types.Func) *LockFact, writes []capturedWrite) map[token.Pos]bool {
	heldAt := make(map[token.Pos]bool, len(writes))
	if len(writes) == 0 {
		return heldAt
	}
	g := cfg.New(lit.Body)
	res := mustHeldFlow(pass, g, make(heldKeys), resolver)
	byPos := make(map[token.Pos][]*capturedWrite)
	for i := range writes {
		byPos[writes[i].pos] = append(byPos[writes[i].pos], &writes[i])
	}
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		held := copyHeld(in)
		for _, n := range b.Nodes {
			events := nodeLockEvents(pass, n, resolver)
			ei := 0
			var visit func(x ast.Node) bool
			visit = func(x ast.Node) bool {
				if _, isLit := x.(*ast.FuncLit); isLit && x != ast.Node(lit) {
					return false
				}
				if x != nil {
					for ei < len(events) && events[ei].pos <= x.Pos() {
						for _, k := range events[ei].acquire {
							held[k] = true
						}
						for _, k := range events[ei].release {
							delete(held, k)
						}
						ei++
					}
					if ws, hit := byPos[x.Pos()]; hit && len(held) > 0 {
						for range ws {
							heldAt[x.Pos()] = true
						}
					}
				}
				return true
			}
			ast.Inspect(n, visit)
			for ei < len(events) {
				for _, k := range events[ei].acquire {
					held[k] = true
				}
				for _, k := range events[ei].release {
					delete(held, k)
				}
				ei++
			}
		}
	}
	return heldAt
}

func runClosureCapture(pass *Pass) {
	resolver := func(fn *types.Func) *LockFact {
		var lf LockFact
		if pass.ImportObjectFact(fn, &lf) {
			return &lf
		}
		return nil
	}
	checkClosure := func(cl asyncClosure) {
		// Loop-variable capture: any use of an enclosing loop's
		// iteration variable inside the closure.
		reportedVar := make(map[types.Object]bool)
		ast.Inspect(cl.lit.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Info.Uses[id]
			if obj == nil || !cl.loopVars[obj] || reportedVar[obj] {
				return true
			}
			reportedVar[obj] = true
			pass.Reportf(id.Pos(), "%s captures loop variable %s; pass it as an argument so the closure depends only on its inputs",
				cl.kind, obj.Name())
			return true
		})

		// Unsynchronised mutation of captured state.
		writes := closureWrites(pass, cl.lit)
		heldAt := heldAtPositions(pass, cl.lit, resolver, writes)
		reported := make(map[token.Pos]bool)
		for _, w := range writes {
			if reported[w.pos] || heldAt[w.pos] {
				continue
			}
			reported[w.pos] = true
			switch w.kind {
			case "map":
				pass.Reportf(w.pos, "%s writes captured map %s without synchronization; concurrent map writes fault at runtime",
					cl.kind, types.ExprString(w.expr))
			case "field":
				pass.Reportf(w.pos, "%s writes field %s of captured %s with no lock held",
					cl.kind, types.ExprString(w.expr), w.obj.Name())
			default:
				pass.Reportf(w.pos, "%s mutates captured variable %s with no lock held",
					cl.kind, w.obj.Name())
			}
		}
	}

	seen := make(map[*ast.FuncLit]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			for _, cl := range collectAsyncClosures(pass, fd.Body) {
				if seen[cl.lit] {
					continue
				}
				seen[cl.lit] = true
				checkClosure(cl)
			}
		}
	}
}
