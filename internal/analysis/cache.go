package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheSchema versions the on-disk entry layout; bumping it orphans
// every existing entry.
const cacheSchema = 1

// A cacheEntry is one package's persisted analysis result: its
// surviving diagnostics and the facts it exported. FactsOnly entries
// come from dependency packages analyzed only for their facts — they
// satisfy a facts lookup but not a diagnostics lookup.
type cacheEntry struct {
	Schema    int              `json:"schema"`
	Package   string           `json:"package"`
	FactsOnly bool             `json:"factsOnly"`
	Diags     []cachedDiag     `json:"diags"`
	Facts     []SerializedFact `json:"facts"`
}

type cachedDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func toCachedDiags(diags []Diagnostic) []cachedDiag {
	out := make([]cachedDiag, len(diags))
	for i, d := range diags {
		out[i] = cachedDiag{File: d.Pos.Filename, Line: d.Pos.Line, Col: d.Pos.Column,
			Analyzer: d.Analyzer, Message: d.Message}
	}
	return out
}

func fromCachedDiags(cached []cachedDiag) []Diagnostic {
	out := make([]Diagnostic, len(cached))
	for i, c := range cached {
		out[i] = Diagnostic{Pos: token.Position{Filename: c.File, Line: c.Line, Column: c.Col},
			Analyzer: c.Analyzer, Message: c.Message}
	}
	return out
}

// resultCache is the content-addressed on-disk store under
// .ecolint-cache/. Keys are package hashes (see runner.pkgHash): the
// analyzer fingerprint, toolchain version, every source file's content
// and every dependency's hash all feed the key, so any edit anywhere in
// a package's cone — or an analyzer version bump — makes a fresh key
// and silently orphans the stale entry. There is no mutable state to
// invalidate, which is what makes concurrent writers safe.
type resultCache struct {
	dir string
}

func newResultCache(dir string) (*resultCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysis: creating cache dir: %w", err)
	}
	return &resultCache{dir: dir}, nil
}

func (c *resultCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// get loads the entry for key, or nil on any miss (absent, unreadable,
// schema drift — all equivalent: the package just gets re-analyzed).
func (c *resultCache) get(key, pkgPath string) *cacheEntry {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var e cacheEntry
	if json.Unmarshal(data, &e) != nil || e.Schema != cacheSchema || e.Package != pkgPath {
		return nil
	}
	return &e
}

// put writes the entry atomically (tmp file + rename) so that a
// concurrent reader never observes a torn file.
func (c *resultCache) put(key string, e *cacheEntry) error {
	e.Schema = cacheSchema
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// analyzersFingerprint folds every selected analyzer's name and version
// into the cache key, so adding, removing or revising an analyzer
// invalidates exactly once.
func analyzersFingerprint(analyzers []*Analyzer) string {
	parts := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		v := a.Version
		if v == "" {
			v = "1"
		}
		parts = append(parts, a.Name+":"+v)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

// hashFile returns the hex sha256 of one source file's content.
func hashFile(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// toolchainFingerprint pins cache entries to the Go toolchain that
// type-checked them: stdlib dependency hashes are just "std:<path>", so
// the toolchain version must participate instead of their file
// contents.
func toolchainFingerprint() string {
	return runtime.Version() + "/" + runtime.GOOS + "/" + runtime.GOARCH
}
