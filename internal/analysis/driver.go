// Package analysis is a small, stdlib-only static-analysis framework for
// the EcoCapsule repository, plus a set of domain-aware analyzers tuned to
// the bug classes that silently corrupt structural-health-monitoring data:
// unit mix-ups in physics math, lock misuse in long-lived servers, leaked
// goroutines, discarded wire-format errors, and exact float comparison.
//
// The framework deliberately avoids golang.org/x/tools: packages are
// enumerated with `go list -deps -json`, parsed with go/parser, and
// type-checked with go/types using an importer backed by the same listing.
// Everything works offline with only the Go toolchain installed.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	TestGoFiles  []string // in-package _test.go files (package foo)
	XTestGoFiles []string // external _test.go files (package foo_test)
	Imports      []string
	TestImports  []string
	XTestImports []string
	Standard     bool
	DepOnly      bool
	Error        *struct{ Err string }
}

// listedFields is the -json field projection shared by every go list
// invocation the drivers make.
const listedFields = "Dir,ImportPath,Name,GoFiles,TestGoFiles,XTestGoFiles," +
	"Imports,TestImports,XTestImports,Standard,DepOnly,Error"

// goListRaw runs `go list -e -deps -json` for the patterns in dir and
// decodes every listed package. CGO is disabled so that every listed
// package (including net, os/user, ...) is buildable as pure Go and can
// be type-checked from source. It touches no shared state and is safe
// to call from any goroutine.
func goListRaw(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-e", "-deps", "-json=" + listedFields}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("analysis: starting go list: %w", err)
	}
	dec := json.NewDecoder(out)
	var listed []*listedPackage
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.ImportPath == "" {
			continue
		}
		cp := p
		listed = append(listed, &cp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	return listed, nil
}

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path     string
	Dir      string
	Fset     *token.FileSet
	Files    []*ast.File
	Types    *types.Package
	Info     *types.Info
	Standard bool
}

// Loader parses and type-checks packages from source. It implements
// types.Importer so that packages under analysis can resolve their imports
// from the same source tree; unknown import paths are resolved lazily with
// an extra `go list` call (used by the golden-test harness for fixture
// packages that import stdlib).
type Loader struct {
	Fset    *token.FileSet
	meta    map[string]*listedPackage // everything `go list` has told us about
	checked map[string]*Package       // fully type-checked packages
	sizes   types.Sizes
	// checking guards against import cycles while recursing.
	checking map[string]bool
}

// NewLoader returns an empty loader with a fresh FileSet.
func NewLoader() *Loader {
	return &Loader{
		Fset:     token.NewFileSet(),
		meta:     make(map[string]*listedPackage),
		checked:  make(map[string]*Package),
		checking: make(map[string]bool),
		sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
}

// goList lists the patterns and merges the metadata of every listed
// package into the loader, returning the loader-owned entries.
func (l *Loader) goList(dir string, patterns ...string) ([]*listedPackage, error) {
	raw, err := goListRaw(dir, patterns...)
	if err != nil {
		return nil, err
	}
	listed := make([]*listedPackage, 0, len(raw))
	for _, p := range raw {
		if _, ok := l.meta[p.ImportPath]; !ok {
			l.meta[p.ImportPath] = p
		}
		listed = append(listed, l.meta[p.ImportPath])
	}
	return listed, nil
}

// Import implements types.Importer. It serves already-checked packages from
// the cache and type-checks listed-but-unchecked ones on demand; paths the
// loader has never heard of trigger a lazy `go list` (stdlib packages pulled
// in by test fixtures land here).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.checked[path]; ok {
		return pkg.Types, nil
	}
	if _, ok := l.meta[path]; !ok {
		if _, err := l.goList("", path); err != nil {
			return nil, err
		}
	}
	pkg, err := l.check(path)
	if err != nil {
		return nil, err
	}
	return pkg.Types, nil
}

// check parses and type-checks the listed package at path (and, through the
// importer, everything it depends on).
func (l *Loader) check(path string) (*Package, error) {
	if pkg, ok := l.checked[path]; ok {
		return pkg, nil
	}
	meta, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("analysis: package %q was never listed", path)
	}
	if l.checking[path] {
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	var files []*ast.File
	for _, name := range meta.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(meta.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    l.sizes,
		Error:    func(error) {}, // keep going; the first error is returned below
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil && !meta.Standard {
		// Standard-library packages may use compiler intrinsics that do not
		// type-check perfectly from source; their declarations (which is all
		// importers need) still do. Errors in the packages under analysis
		// are fatal.
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:     path,
		Dir:      meta.Dir,
		Fset:     l.Fset,
		Files:    files,
		Types:    tpkg,
		Info:     info,
		Standard: meta.Standard,
	}
	l.checked[path] = pkg
	return pkg, nil
}

// CheckFixture parses every .go file in dir as a single package, registers
// it under importPath and type-checks it with the loader as importer. It is
// the entry point used by the golden-file test harness; fixture packages may
// import each other (register dependencies first) and the standard library.
func (l *Loader) CheckFixture(importPath, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("analysis: no .go files in %s", dir)
	}
	l.meta[importPath] = &listedPackage{Dir: dir, ImportPath: importPath, GoFiles: goFiles}
	return l.check(importPath)
}
