package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// DeterministicDirective marks a package whose outputs must be
// byte-reproducible: the golden span tree, the golden SHM survey,
// seeded fault plans and every simulation stage feeding them. Place it
// in any file of the package (conventionally next to the package
// clause):
//
//	//ecolint:deterministic
//
// Inside a marked package the determinism analyzer flags every call
// path that reaches a nondeterminism source.
const DeterministicDirective = "//ecolint:deterministic"

// NondetFact records that a function transitively reaches a
// nondeterminism source. It is exported on package-level functions and
// methods so that passes over dependent packages can flag calls into
// tainted code without re-walking it.
type NondetFact struct {
	// Source is the root cause, e.g. "time.Now" or "map iteration order".
	Source string `json:"source"`
	// Via is the qualified name of the first callee on the path from the
	// carrier to the source, "" when the carrier calls the source
	// directly.
	Via string `json:"via,omitempty"`
}

// AFact marks NondetFact as a fact.
func (*NondetFact) AFact() {}

// Determinism flags, inside packages marked //ecolint:deterministic,
// every call that directly or transitively reaches a wall-clock read
// (time.Now / time.Since / time.Until), the process-global math/rand
// source, or a range over a map that writes to an output sink while
// iterating (map order is randomised per run). Reproducibility is this
// repo's correctness substrate — golden artefacts are compared
// byte-for-byte — so a nondeterministic call threaded in three layers
// down breaks CI the same way sensor-clock drift breaks a long-term SHM
// baseline. Transitive reach is computed via cross-package NondetFacts,
// so the flag lands on the deterministic package's own call site: the
// place where the fix (inject a clock, seed a source) belongs.
// Deliberate exceptions use //ecolint:ignore determinism <reason>.
var Determinism = &Analyzer{
	Name:      "determinism",
	Version:   "1",
	UsesFacts: true,
	Doc: "flags calls in //ecolint:deterministic packages that transitively reach " +
		"time.Now/Since/Until, the global math/rand source, or map-ordered output",
	Run: runDeterminism,
}

// nondetTimeFuncs are the wall-clock reads in package time.
var nondetTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// detRandConstructors are math/rand functions that are pure
// constructors — safe because the caller controls the seed.
var detRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

// sinkWriteMethods are method names that emit bytes to an output when
// called inside a map range (order-dependent output).
var sinkWriteMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

// directSource classifies a call (or map range) as a nondeterminism
// root, returning a description or "".
func directSource(pass *Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return "" // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if nondetTimeFuncs[fn.Name()] {
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !detRandConstructors[fn.Name()] {
			return fn.Pkg().Path() + "." + fn.Name() + " (process-global source)"
		}
	}
	return ""
}

// funcInfo is the per-function summary the intra-package propagation
// works on.
type funcInfo struct {
	obj     *types.Func
	decl    *ast.FuncDecl
	sources []sourceAt  // direct nondeterminism roots in the body
	calls   []callAt    // resolved callees, in source order
	fact    *NondetFact // nil until tainted
}

type sourceAt struct {
	pos  token.Pos
	desc string
}

type callAt struct {
	pos    token.Pos
	callee *types.Func
}

func runDeterminism(pass *Pass) {
	// Facts are computed and exported for every package — marked or not —
	// so that deterministic dependents can see taint through ordinary
	// helper packages. Reporting (pass 4) happens only in marked packages.
	marked := hasDirective(pass.Files, DeterministicDirective)

	// Pass 1: summarise every declared function: direct sources and
	// outgoing calls. Function literals are charged to their enclosing
	// declaration — a closure built around time.Now makes the builder
	// nondeterministic to callers.
	var funcs []*funcInfo
	byObj := make(map[*types.Func]*funcInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fi := &funcInfo{obj: obj, decl: fd}
			summarise(pass, fd.Body, fi)
			funcs = append(funcs, fi)
			byObj[obj] = fi
		}
	}

	// Pass 2: propagate taint to a fixpoint. A function is tainted by a
	// direct source, by calling a tainted same-package function, or by
	// calling an imported function carrying a NondetFact.
	for _, fi := range funcs {
		if len(fi.sources) > 0 {
			fi.fact = &NondetFact{Source: fi.sources[0].desc}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.fact != nil {
				continue
			}
			for _, c := range fi.calls {
				if desc, via, ok := calleeTaint(pass, byObj, c.callee); ok {
					fi.fact = &NondetFact{Source: desc, Via: via}
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: export facts so dependent packages see the taint.
	for _, fi := range funcs {
		if fi.fact != nil {
			pass.ExportObjectFact(fi.obj, fi.fact)
		}
	}

	// Pass 4: report, only inside marked packages. Each function gets
	// one finding per offending call site: direct sources first, then
	// calls into tainted functions.
	if !marked || pass.FactsOnly {
		return
	}
	for _, fi := range funcs {
		for _, s := range fi.sources {
			pass.Reportf(s.pos, "nondeterministic call to %s in a deterministic package", s.desc)
		}
		for _, c := range fi.calls {
			if desc, _, ok := calleeTaint(pass, byObj, c.callee); ok {
				pass.Reportf(c.pos, "call to %s, which transitively reaches %s, in a deterministic package",
					qualifiedName(pass, c.callee), desc)
			}
		}
	}
}

// calleeTaint reports whether calling fn introduces nondeterminism,
// with the root source description and the via link for the message.
func calleeTaint(pass *Pass, byObj map[*types.Func]*funcInfo, fn *types.Func) (desc, via string, ok bool) {
	if fn == nil {
		return "", "", false
	}
	if fi, same := byObj[fn]; same {
		if fi.fact == nil {
			return "", "", false
		}
		return fi.fact.Source, qualifiedName(pass, fn), true
	}
	var fact NondetFact
	if pass.ImportObjectFact(fn, &fact) {
		return fact.Source, qualifiedName(pass, fn), true
	}
	return "", "", false
}

// summarise walks one function body recording direct sources and
// outgoing calls. Direct sources inside the body win over the same
// call recorded as an outgoing edge (a call is never both).
func summarise(pass *Pass, body *ast.BlockStmt, fi *funcInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if desc := directSource(pass, n); desc != "" {
				fi.sources = append(fi.sources, sourceAt{pos: n.Pos(), desc: desc})
				return true
			}
			if fn := calleeFunc(pass, n); fn != nil {
				fi.calls = append(fi.calls, callAt{pos: n.Pos(), callee: fn})
			}
		case *ast.RangeStmt:
			if pos, ok := mapRangeWritesOutput(pass, n); ok {
				fi.sources = append(fi.sources, sourceAt{pos: pos, desc: "map iteration order (range writes to an output sink)"})
			}
		}
		return true
	})
	sort.Slice(fi.sources, func(i, j int) bool { return fi.sources[i].pos < fi.sources[j].pos })
}

// mapRangeWritesOutput detects `for k := range m { ...fmt.Fprintf(w,
// ...)... }` over a map: the iteration order leaks straight into an
// output stream. Collect-then-sort loops don't trip it — they contain
// no sink call inside the range body.
func mapRangeWritesOutput(pass *Pass, rng *ast.RangeStmt) (token.Pos, bool) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return token.NoPos, false
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return token.NoPos, false
	}
	var at token.Pos
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if at.IsValid() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isSinkCall(pass, call) {
			at = call.Pos()
			return false
		}
		return true
	})
	return at, at.IsValid()
}

// isSinkCall reports whether the call emits output: a fmt print
// function or a Write* method (io.Writer, bytes.Buffer,
// strings.Builder, ...).
func isSinkCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return sinkWriteMethods[fn.Name()]
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		name := fn.Name()
		return strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")
	}
	return false
}

// qualifiedName renders fn for messages: "pkg.F" for imported
// functions, "F" or "T.M" for same-package ones.
func qualifiedName(pass *Pass, fn *types.Func) string {
	key, ok := ObjectKey(fn)
	if !ok {
		key = fn.Name()
	}
	if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
		return fn.Pkg().Name() + "." + key
	}
	return key
}

// hasDirective reports whether any comment in the files is exactly the
// directive (modulo trailing text).
func hasDirective(files []*ast.File, directive string) bool {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.HasPrefix(strings.TrimSpace(c.Text), directive) {
					return true
				}
			}
		}
	}
	return false
}
