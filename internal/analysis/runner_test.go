package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ecocapsule/internal/analysis"
)

// writeModule materialises a throwaway Go module for driver tests:
//
//	clock    — helper package reading the wall clock (taint source)
//	sim      — //ecolint:deterministic, calls clock.Stamp through an import
//	geometry — exact float comparison, plus one more in its _test.go file
//	           (named for the floatcmp analyzer's package scope)
//
// The cross-package edge (sim → clock) exercises the facts layer and its
// cache round-trip; the _test.go file exercises test-unit loading.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module cachemod\n\ngo 1.21\n",
		"clock/clock.go": `package clock

import "time"

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Pure is untainted.
func Pure(x int64) int64 { return x + 1 }
`,
		"sim/sim.go": `// Package sim is a deterministic stage.
package sim

//ecolint:deterministic

import "cachemod/clock"

// Tainted reaches time.Now through the clock helper.
func Tainted() int64 { return clock.Stamp() }

// Clean stays inside deterministic code.
func Clean() int64 { return clock.Pure(41) }
`,
		"geometry/geometry.go": `package geometry

// Eq compares floats exactly.
func Eq(a, b float64) bool { return a == b }
`,
		"geometry/geometry_test.go": `package geometry

import "testing"

func TestEq(t *testing.T) {
	x, y := 0.1+0.2, 0.3
	if x == y {
		t.Log("equal")
	}
	_ = Eq(x, y)
}
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// suite is the analyzer subset the driver tests run: one facts-using
// analyzer (cross-package taint) and one purely local analyzer.
func suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{analysis.Determinism, analysis.FloatCmp}
}

func formatDiags(diags []analysis.Diagnostic) string {
	var b strings.Builder
	analysis.FormatText(&b, diags)
	return b.String()
}

func TestCacheLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list and type-checks stdlib deps")
	}
	dir := writeModule(t)
	opts := analysis.Options{
		Dir:          dir,
		Analyzers:    suite(),
		IncludeTests: true,
		CacheDir:     filepath.Join(dir, ".ecolint-cache"),
	}

	// Cold: every target misses and gets checked.
	cold, stats, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if stats.Targets != 3 {
		t.Fatalf("targets = %d, want 3", stats.Targets)
	}
	if stats.CacheHits != 0 || stats.CacheMisses != 3 {
		t.Errorf("cold run: hits=%d misses=%d, want 0/3", stats.CacheHits, stats.CacheMisses)
	}
	if stats.UnitsChecked == 0 {
		t.Error("cold run checked no units")
	}
	out := formatDiags(cold)
	if !strings.Contains(out, "determinism") || !strings.Contains(out, "clock.Stamp") {
		t.Errorf("cold run missing the cross-package determinism finding:\n%s", out)
	}
	if got := strings.Count(out, "floatcmp"); got != 2 {
		t.Errorf("cold run has %d floatcmp findings, want 2 (one in geometry.go, one in geometry_test.go):\n%s", got, out)
	}

	// Warm: all hits, nothing checked, byte-identical output.
	warm, stats2, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if stats2.CacheHits != 3 || stats2.CacheMisses != 0 {
		t.Errorf("warm run: hits=%d misses=%d, want 3/0", stats2.CacheHits, stats2.CacheMisses)
	}
	if stats2.UnitsChecked != 0 {
		t.Errorf("warm run checked %d units, want 0", stats2.UnitsChecked)
	}
	if w := formatDiags(warm); w != out {
		t.Errorf("warm diagnostics differ from cold:\ncold:\n%s\nwarm:\n%s", out, w)
	}

	// Invalidation is transitive: editing clock re-analyzes clock AND sim
	// (sim's key embeds clock's hash), while geometry still hits.
	clockSrc := filepath.Join(dir, "clock", "clock.go")
	src, err := os.ReadFile(clockSrc)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(src), "time.Now().UnixNano()", "time.Time{}.UnixNano()", 1)
	if edited == string(src) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(clockSrc, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}
	fixed, stats3, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("post-edit run: %v", err)
	}
	if stats3.CacheHits != 1 || stats3.CacheMisses != 2 {
		t.Errorf("post-edit run: hits=%d misses=%d, want 1/2 (geometry hits; clock and sim re-analyze)", stats3.CacheHits, stats3.CacheMisses)
	}
	fixedOut := formatDiags(fixed)
	if strings.Contains(fixedOut, "determinism") {
		t.Errorf("determinism finding survived removing the taint source:\n%s", fixedOut)
	}
	if got := strings.Count(fixedOut, "floatcmp"); got != 2 {
		t.Errorf("floatcmp findings disturbed by an unrelated edit: got %d, want 2:\n%s", got, fixedOut)
	}

	// And the edited tree warms back up.
	_, stats4, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("re-warm run: %v", err)
	}
	if stats4.CacheHits != 3 || stats4.UnitsChecked != 0 {
		t.Errorf("re-warm run: hits=%d units=%d, want 3 hits / 0 units", stats4.CacheHits, stats4.UnitsChecked)
	}

	// Bumping an analyzer's version invalidates every entry: the
	// fingerprint participates in each package's key.
	bumped := *analysis.FloatCmp
	bumped.Version = "version-bump-test"
	bumpedOpts := opts
	bumpedOpts.Analyzers = []*analysis.Analyzer{analysis.Determinism, &bumped}
	_, stats5, err := analysis.Run(bumpedOpts, "./...")
	if err != nil {
		t.Fatalf("version-bump run: %v", err)
	}
	if stats5.CacheHits != 0 || stats5.CacheMisses != 3 {
		t.Errorf("version-bump run: hits=%d misses=%d, want 0/3 (analyzer version must invalidate)", stats5.CacheHits, stats5.CacheMisses)
	}
}

// TestCacheAnnotationFactFlip guards the subtlest invalidation case:
// an edit that changes NOTHING but a comment. //ecolint:unit (like
// guardedby and hotpath) directives live in comments, and their facts
// flow into dependent packages — so a cache keyed on anything less than
// full file content (an AST hash, an export-data hash) would serve the
// dependent's stale, finding-free entry forever. The key here is the
// content hash of the file bytes plus all dependency hashes, so adding
// one comment line to the dependency must re-analyze the dependent and
// surface the new cross-package unit mismatch.
func TestCacheAnnotationFactFlip(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list and type-checks stdlib deps")
	}
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module factflip\n\ngo 1.21\n",
		"rates/rates.go": `package rates

// SampleRate is the ADC rate.
var SampleRate = 48000.0
`,
		"app/app.go": `package app

import "factflip/rates"

// window is the demodulation window.
//
//ecolint:unit s
var window = 0.005

// Mix folds the rate into the window. Dimensionally nonsense — but only
// visible once rates.SampleRate carries its hz annotation.
func Mix() float64 { return rates.SampleRate + window }
`,
	}
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	opts := analysis.Options{
		Dir:       dir,
		Analyzers: []*analysis.Analyzer{analysis.DimCheck},
		CacheDir:  filepath.Join(dir, ".ecolint-cache"),
	}

	// Cold: no annotation on SampleRate, so the add is dimensionally silent.
	cold, stats, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if stats.CacheMisses != 2 {
		t.Fatalf("cold run: misses=%d, want 2", stats.CacheMisses)
	}
	if out := formatDiags(cold); out != "" {
		t.Fatalf("unannotated tree produced findings:\n%s", out)
	}

	// Warm sanity.
	_, stats2, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if stats2.CacheHits != 2 || stats2.UnitsChecked != 0 {
		t.Fatalf("warm run: hits=%d units=%d, want 2 hits / 0 units", stats2.CacheHits, stats2.UnitsChecked)
	}

	// The comment-only edit: annotate SampleRate hz. No code changes.
	ratesSrc := filepath.Join(dir, "rates", "rates.go")
	src, err := os.ReadFile(ratesSrc)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(string(src),
		"// SampleRate is the ADC rate.",
		"// SampleRate is the ADC rate.\n//\n//ecolint:unit hz", 1)
	if edited == string(src) {
		t.Fatal("edit did not apply")
	}
	if err := os.WriteFile(ratesSrc, []byte(edited), 0o644); err != nil {
		t.Fatal(err)
	}

	// Both rates (edited) and app (dependent) must miss; the flipped
	// UnitFact must now surface the mismatch inside app.
	flipped, stats3, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("post-flip run: %v", err)
	}
	if stats3.CacheHits != 0 || stats3.CacheMisses != 2 {
		t.Errorf("post-flip run: hits=%d misses=%d, want 0/2 (a comment-only fact flip must invalidate the dependent)",
			stats3.CacheHits, stats3.CacheMisses)
	}
	out := formatDiags(flipped)
	if !strings.Contains(out, "unit mismatch") || !strings.Contains(out, "rates.SampleRate") {
		t.Errorf("post-flip run missing the cross-package unit mismatch in app:\n%s", out)
	}

	// The finding must survive a warm replay from cache, not just the
	// fresh analysis.
	rewarm, stats4, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("re-warm run: %v", err)
	}
	if stats4.CacheHits != 2 || stats4.UnitsChecked != 0 {
		t.Errorf("re-warm run: hits=%d units=%d, want 2 hits / 0 units", stats4.CacheHits, stats4.UnitsChecked)
	}
	if got := formatDiags(rewarm); got != out {
		t.Errorf("cached diagnostics differ from fresh:\nfresh:\n%s\ncached:\n%s", out, got)
	}

	// Reverting the comment restores the original content hashes, so the
	// untouched pre-flip entries come straight back — and with them the
	// finding-free diagnostics. Both states coexist in the cache, keyed
	// by content.
	if err := os.WriteFile(ratesSrc, src, 0o644); err != nil {
		t.Fatal(err)
	}
	cleared, stats5, err := analysis.Run(opts, "./...")
	if err != nil {
		t.Fatalf("post-revert run: %v", err)
	}
	if stats5.CacheHits != 2 || stats5.UnitsChecked != 0 {
		t.Errorf("post-revert run: hits=%d units=%d, want 2 hits / 0 units (original entries restored)",
			stats5.CacheHits, stats5.UnitsChecked)
	}
	if got := formatDiags(cleared); got != "" {
		t.Errorf("finding survived reverting the annotation:\n%s", got)
	}
}

// TestParallelMatchesSequential asserts the parallel driver is
// observationally deterministic: whatever the worker interleaving, the
// ordered diagnostics are byte-identical to a fully sequential run. Run
// under -race this also exercises the shared FileSet, the completed-types
// map and the facts table from many goroutines at once.
func TestParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list and type-checks stdlib deps")
	}
	dir := writeModule(t)
	base := analysis.Options{Dir: dir, Analyzers: suite(), IncludeTests: true}

	seqOpts := base
	seqOpts.Parallelism = 1
	seq, _, err := analysis.Run(seqOpts, "./...")
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	want := formatDiags(seq)
	if want == "" {
		t.Fatal("sequential run found nothing; fixture is broken")
	}

	parOpts := base
	parOpts.Parallelism = 8
	for i := 0; i < 3; i++ {
		par, _, err := analysis.Run(parOpts, "./...")
		if err != nil {
			t.Fatalf("parallel run %d: %v", i, err)
		}
		if got := formatDiags(par); got != want {
			t.Errorf("parallel run %d diverged from sequential:\nsequential:\n%s\nparallel:\n%s", i, want, got)
		}
	}
}

// TestCacheDisabled verifies -cache=false semantics: no directory is
// created and every run re-checks.
func TestCacheDisabled(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go list and type-checks stdlib deps")
	}
	dir := writeModule(t)
	opts := analysis.Options{Dir: dir, Analyzers: suite(), IncludeTests: true}
	for i := 0; i < 2; i++ {
		_, stats, err := analysis.Run(opts, "./...")
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if stats.CacheHits != 0 || stats.CacheMisses != 3 {
			t.Errorf("run %d: hits=%d misses=%d, want 0/3 without a cache", i, stats.CacheHits, stats.CacheMisses)
		}
		if stats.UnitsChecked == 0 {
			t.Errorf("run %d checked nothing", i)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, ".ecolint-cache")); !os.IsNotExist(err) {
		t.Error("cache directory created despite cache being disabled")
	}
}
