package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
	"unicode"
)

// UnitSafety flags unit handling that has historically corrupted SHM data:
//
//  1. bare magic multipliers (1e3, 1e6, 1e-3, ...) written into expressions
//     whose identifier names imply a physical dimension for which
//     internal/units already defines a named constant (units.KHz, units.MM,
//     units.US, ...), and
//  2. addition or subtraction of two identifiers whose names imply
//     *different* dimensions (freqHz + periodS), which is always a bug.
//
// A wrong unit multiplier does not crash; it silently scales strain, modal
// frequency or wave-speed readings by 10^3 or 10^6 and poisons every
// downstream health grade.
var UnitSafety = &Analyzer{
	Name: "unitsafety",
	Doc: "flags bare unit-multiplier literals where an internal/units constant exists, " +
		"and additions mixing identifiers of different physical dimensions",
	Version: "2", // v2: voltage and energy dimension families
	Run:     runUnitSafety,
}

type dimension int

const (
	dimNone dimension = iota
	dimFreq
	dimTime
	dimLength
	dimPressure
	dimPower
	dimVoltage
	dimEnergy
)

func (d dimension) String() string {
	switch d {
	case dimFreq:
		return "frequency"
	case dimTime:
		return "time"
	case dimLength:
		return "length"
	case dimPressure:
		return "pressure"
	case dimPower:
		return "power"
	case dimVoltage:
		return "voltage"
	case dimEnergy:
		return "energy"
	}
	return "unknown"
}

// dimWords maps lower-cased identifier words to the dimension they imply.
// Matching is whole-word (after splitting camelCase / snake_case), never
// substring, so "offset" does not match "fs".
var dimWords = map[string]dimension{
	"freq": dimFreq, "freqs": dimFreq, "frequency": dimFreq, "hz": dimFreq, "khz": dimFreq,
	"mhz": dimFreq, "rate": dimFreq, "fs": dimFreq, "blf": dimFreq,

	"time": dimTime, "dur": dimTime, "duration": dimTime, "delay": dimTime,
	"period": dimTime, "interval": dimTime, "dt": dimTime, "timeout": dimTime,
	"sec": dimTime, "secs": dimTime, "seconds": dimTime, "ms": dimTime, "us": dimTime,

	"length": dimLength, "wavelength": dimLength, "dist": dimLength,
	"distance": dimLength, "width": dimLength, "height": dimLength,
	"thickness": dimLength, "thick": dimLength, "radius": dimLength,
	"depth": dimLength, "spacing": dimLength, "mm": dimLength, "cm": dimLength,
	"m": dimLength, "meters": dimLength, "metres": dimLength,

	"pressure": dimPressure, "stress": dimPressure, "modulus": dimPressure,
	"pa": dimPressure, "kpa": dimPressure, "mpa": dimPressure, "gpa": dimPressure,

	"power": dimPower, "watt": dimPower, "watts": dimPower,
	"uw": dimPower, "mw": dimPower,

	"voltage": dimVoltage, "volt": dimVoltage, "volts": dimVoltage,
	"mv": dimVoltage, "uv": dimVoltage, "vin": dimVoltage, "vout": dimVoltage,

	"energy": dimEnergy, "joule": dimEnergy, "joules": dimEnergy,
	"uj": dimEnergy, "mj": dimEnergy,
}

// unitConsts lists, per dimension, the internal/units constant to suggest
// for each magic multiplier value.
var unitConsts = map[dimension]map[float64]string{
	dimFreq:     {1e3: "units.KHz", 1e6: "units.MHz"},
	dimTime:     {1e-3: "units.MS", 1e-6: "units.US"},
	dimLength:   {1e-3: "units.MM", 1e-2: "units.CM"},
	dimPressure: {1e3: "units.KPa", 1e6: "units.MPa", 1e9: "units.GPa"},
	dimPower:    {1e-6: "units.UW", 1e-3: "units.MW"},
	dimVoltage:  {1e-3: "units.MV", 1e-6: "units.UV"},
	dimEnergy:   {1e-3: "units.MJ", 1e-6: "units.UJ"},
}

// splitWords breaks an identifier into lower-cased words at camelCase and
// snake_case boundaries: "SampleRateHz" -> [sample rate hz].
func splitWords(name string) []string {
	var words []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			words = append(words, strings.ToLower(string(cur)))
			cur = cur[:0]
		}
	}
	runes := []rune(name)
	for i, r := range runes {
		switch {
		case r == '_':
			flush()
		case unicode.IsUpper(r):
			// Start a new word unless we are inside an all-caps run that
			// continues (e.g. the "BLF" in "targetBLF").
			if i > 0 && !unicode.IsUpper(runes[i-1]) {
				flush()
			} else if i > 0 && i+1 < len(runes) && unicode.IsUpper(runes[i-1]) && unicode.IsLower(runes[i+1]) {
				flush()
			}
			cur = append(cur, r)
		default:
			cur = append(cur, r)
		}
	}
	flush()
	return words
}

// nameDimension infers the dimension implied by an identifier name, or
// dimNone when the words are ambiguous (two different dimensions) or carry
// no unit hint.
func nameDimension(name string) dimension {
	found := dimNone
	for _, w := range splitWords(name) {
		if d, ok := dimWords[w]; ok {
			if found != dimNone && found != d {
				return dimNone
			}
			found = d
		}
	}
	return found
}

// exprName returns the identifier text that names the quantity an
// expression refers to ("cfg.SampleRate" -> "SampleRate"), or "".
func exprName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.IndexExpr:
		return exprName(e.X)
	}
	return ""
}

func runUnitSafety(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/units") {
		return // the package that defines the constants may use raw values
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						checkMagic(pass, name.Name, n.Values[i])
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						checkMagic(pass, exprName(lhs), n.Rhs[i])
					}
				}
			case *ast.KeyValueExpr:
				if k, ok := n.Key.(*ast.Ident); ok {
					checkMagic(pass, k.Name, n.Value)
				}
			case *ast.BinaryExpr:
				switch n.Op {
				case token.MUL, token.QUO:
					if name := exprName(n.X); name != "" {
						checkMagic(pass, name, n.Y)
					}
					if n.Op == token.MUL {
						if name := exprName(n.Y); name != "" {
							checkMagic(pass, name, n.X)
						}
					}
				case token.ADD, token.SUB:
					checkMixedDims(pass, n)
				}
			}
			return true
		})
	}
}

// checkMagic reports value when it is a bare literal equal to a known unit
// multiplier for the dimension implied by name. Products recurse into both
// factors, so `DiodeDrop: 120 * 1e-3` flags the 1e-3 the same way a bare
// `DiodeDrop: 1e-3` would.
func checkMagic(pass *Pass, name string, value ast.Expr) {
	if name == "" {
		return
	}
	value = ast.Unparen(value)
	if bin, ok := value.(*ast.BinaryExpr); ok && bin.Op == token.MUL {
		checkMagic(pass, name, bin.X)
		checkMagic(pass, name, bin.Y)
		return
	}
	lit, ok := value.(*ast.BasicLit)
	if !ok || (lit.Kind != token.FLOAT && lit.Kind != token.INT) {
		return
	}
	dim := nameDimension(name)
	if dim == dimNone {
		return
	}
	tv, ok := pass.Info.Types[lit]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Float && tv.Value.Kind() != constant.Int {
		return
	}
	v, _ := constant.Float64Val(constant.ToFloat(tv.Value))
	if c, ok := unitConsts[dim][v]; ok {
		pass.Reportf(lit.Pos(), "magic literal %s in %s expression %q; use %s", lit.Value, dim, name, c)
	}
}

// checkMixedDims reports x+y / x-y when both operand names imply dimensions
// and the dimensions differ.
func checkMixedDims(pass *Pass, n *ast.BinaryExpr) {
	nx, ny := exprName(n.X), exprName(n.Y)
	if nx == "" || ny == "" {
		return
	}
	dx, dy := nameDimension(nx), nameDimension(ny)
	if dx == dimNone || dy == dimNone || dx == dy {
		return
	}
	// Only arithmetic on numeric operands can be a unit bug.
	if !isNumeric(pass.TypeOf(n.X)) || !isNumeric(pass.TypeOf(n.Y)) {
		return
	}
	pass.Reportf(n.OpPos, "%s %s %s mixes dimensions (%s %s %s)", nx, n.Op, ny, dx, n.Op, dy)
}

func isNumeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
