package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"ecocapsule/internal/analysis/cfg"
)

// GuardedByDirective annotates a struct field with the sibling mutex
// that must be held around every access:
//
//	type Fleet struct {
//		mu sync.Mutex
//		//ecolint:guardedby mu
//		alive []bool
//	}
//
// The guardedby analyzer then runs a must-held lock-set dataflow over
// every function (defer-aware: `defer mu.Unlock()` holds to the end)
// and flags any read or write of an annotated field on a path where the
// named mutex is provably not held. RWMutex guards are direction-aware:
// reads are satisfied by RLock or Lock, writes demand Lock.
//
// Helper methods that are documented to run under the caller's lock opt
// out of in-body flagging in one of two ways: a name ending in "Locked"
// (the repository convention — rerouteLocked, coverageLocked, ...) or
// an explicit //ecolint:requiresheld directive. Their lock requirement
// is exported as a LockFact and enforced at every call site instead,
// across package boundaries.
const GuardedByDirective = "//ecolint:guardedby"

// GuardedByFact is the per-struct annotation table exported on the
// struct's type object so dependent packages can check accesses to
// exported guarded fields.
type GuardedByFact struct {
	// Fields maps annotated field name -> guard field name.
	Fields map[string]string `json:"fields"`
	// RWGuards marks guard fields that are sync.RWMutex (read accesses
	// may hold either half).
	RWGuards map[string]bool `json:"rwGuards,omitempty"`
}

// AFact marks GuardedByFact as a fact.
func (*GuardedByFact) AFact() {}

// GuardedBy enforces //ecolint:guardedby contracts. Races on routing
// and subscriber state don't corrupt a single SHM reading — they
// corrupt which stations the fleet trusts, which is how a monitoring
// system silently grades a damaged span FULL. The -race detector only
// sees schedules the tests happen to produce; this check covers every
// path the CFG can name.
var GuardedBy = &Analyzer{
	Name:      "guardedby",
	Version:   "1",
	UsesFacts: true,
	Doc: "flags reads/writes of //ecolint:guardedby fields on paths where the named mutex " +
		"is not held (defer-aware, RWMutex read-vs-write aware, interprocedural via lock-set facts)",
	Run: runGuardedBy,
}

// guardRef describes one annotated field's contract.
type guardRef struct {
	guard string // sibling mutex field name
	rw    bool   // guard is a sync.RWMutex
}

// mutexKind classifies a type as sync.Mutex / sync.RWMutex (directly or
// behind one pointer).
func mutexKind(t types.Type) (isMutex, isRW bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false, false
	}
	switch obj.Name() {
	case "Mutex":
		return true, false
	case "RWMutex":
		return true, true
	}
	return false, false
}

// guardTable holds the annotation tables for one pass: local fields by
// object, plus a cache of imported per-type facts.
type guardTable struct {
	pass     *Pass
	local    map[*types.Var]guardRef
	imported map[*types.TypeName]*GuardedByFact // nil value = no fact
}

// directiveArgs extracts the arguments of directive from a comment
// group, reporting whether the directive is present.
func directiveArgs(cg *ast.CommentGroup, directive string) ([]string, bool) {
	if cg == nil {
		return nil, false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if strings.HasPrefix(text, directive) {
			rest := strings.TrimSpace(strings.TrimPrefix(text, directive))
			return strings.Fields(rest), true
		}
	}
	return nil, false
}

// collectGuards scans the package's struct declarations for guardedby
// annotations, validates them, fills the local table and exports one
// GuardedByFact per annotated type.
func collectGuards(pass *Pass) *guardTable {
	gt := &guardTable{
		pass:     pass,
		local:    make(map[*types.Var]guardRef),
		imported: make(map[*types.TypeName]*GuardedByFact),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				gt.collectStruct(pass, ts, st)
			}
		}
	}
	return gt
}

// collectStruct handles one struct declaration.
func (gt *guardTable) collectStruct(pass *Pass, ts *ast.TypeSpec, st *ast.StructType) {
	// First index the mutex fields so annotations can be validated.
	type mutexInfo struct{ rw bool }
	mutexes := make(map[string]mutexInfo)
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if v, _ := pass.Info.Defs[name].(*types.Var); v != nil {
				if isMu, isRW := mutexKind(v.Type()); isMu {
					mutexes[name.Name] = mutexInfo{rw: isRW}
				}
			}
		}
	}
	fact := &GuardedByFact{Fields: make(map[string]string)}
	for _, field := range st.Fields.List {
		args, found := directiveArgs(field.Doc, GuardedByDirective)
		if !found {
			args, found = directiveArgs(field.Comment, GuardedByDirective)
		}
		if !found {
			continue
		}
		pos := field.Pos()
		if len(args) == 0 {
			pass.Reportf(pos, "guardedby directive names no mutex field (//ecolint:guardedby <mutexField>)")
			continue
		}
		guard := args[0]
		mi, ok := mutexes[guard]
		if !ok {
			pass.Reportf(pos, "guardedby directive names %q, which is not a sync.Mutex/RWMutex field of %s", guard, ts.Name.Name)
			continue
		}
		for _, name := range field.Names {
			if name.Name == guard {
				pass.Reportf(pos, "guardedby directive on the mutex field %q itself (annotate the data it protects)", guard)
				continue
			}
			if v, _ := pass.Info.Defs[name].(*types.Var); v != nil {
				gt.local[v] = guardRef{guard: guard, rw: mi.rw}
				fact.Fields[name.Name] = guard
				if mi.rw {
					if fact.RWGuards == nil {
						fact.RWGuards = make(map[string]bool)
					}
					fact.RWGuards[guard] = true
				}
			}
		}
	}
	if len(fact.Fields) == 0 {
		return
	}
	if tn, _ := pass.Info.Defs[ts.Name].(*types.TypeName); tn != nil {
		pass.ExportObjectFact(tn, fact)
	}
}

// guardOf resolves the guard contract of a field selection, if any.
// base is the printed expression the guard key hangs off ("f" for
// f.alive -> guard key "f.mu").
func (gt *guardTable) guardOf(sel *ast.SelectorExpr) (ref guardRef, base string, ok bool) {
	selection, found := gt.pass.Info.Selections[sel]
	if !found || selection.Kind() != types.FieldVal {
		return guardRef{}, "", false
	}
	field, _ := selection.Obj().(*types.Var)
	if field == nil {
		return guardRef{}, "", false
	}
	if ref, ok := gt.local[field]; ok {
		return ref, types.ExprString(sel.X), true
	}
	if field.Pkg() == gt.pass.Pkg {
		return guardRef{}, "", false
	}
	// Cross-package access: consult the owning type's exported fact.
	t := selection.Recv()
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return guardRef{}, "", false
	}
	tn := named.Obj()
	fact, cached := gt.imported[tn]
	if !cached {
		var f GuardedByFact
		if gt.pass.ImportObjectFact(tn, &f) {
			fact = &f
		}
		gt.imported[tn] = fact
	}
	if fact == nil {
		return guardRef{}, "", false
	}
	guard, annotated := fact.Fields[field.Name()]
	if !annotated {
		return guardRef{}, "", false
	}
	return guardRef{guard: guard, rw: fact.RWGuards[guard]}, types.ExprString(sel.X), true
}

// accessEvent is one read or write of a guarded field, in source order.
type accessEvent struct {
	pos   token.Pos
	sel   *ast.SelectorExpr
	ref   guardRef
	base  string
	write bool
}

// callEvent is one call whose callee carries a RequiresHeld contract.
type callEvent struct {
	pos      token.Pos
	base     string
	callee   *types.Func
	requires []string
}

// markWriteTargets records, for every assignment/inc-dec/address-of/
// delete inside n, which selector expression is the written-to base.
// f.best[h] = v marks f.best; *f.p = v marks f.p; &f.buf marks f.buf
// (escaping addresses are treated as writes).
func markWriteTargets(n ast.Node, writes map[ast.Expr]bool) {
	var markTarget func(e ast.Expr)
	markTarget = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.ParenExpr:
			markTarget(e.X)
		case *ast.IndexExpr:
			markTarget(e.X)
		case *ast.StarExpr:
			markTarget(e.X)
		case *ast.SliceExpr:
			markTarget(e.X)
		case *ast.SelectorExpr:
			writes[e] = true
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markTarget(lhs)
			}
		case *ast.IncDecStmt:
			markTarget(x.X)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markTarget(x.X)
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) > 0 {
				markTarget(x.Args[0])
			}
		}
		return true
	})
}

// nodeAccessEvents collects the guarded-field accesses of one CFG node
// in position order. Function literal bodies are skipped — each literal
// is analyzed as its own function.
func nodeAccessEvents(gt *guardTable, n ast.Node) []accessEvent {
	writes := make(map[ast.Expr]bool)
	markWriteTargets(n, writes)
	var events []accessEvent
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		sel, ok := x.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if ref, base, guarded := gt.guardOf(sel); guarded {
			events = append(events, accessEvent{pos: sel.Sel.Pos(), sel: sel, ref: ref, base: base, write: writes[sel]})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// nodeCallEvents collects the calls (in one CFG node) into functions
// carrying a RequiresHeld contract, local or imported.
func nodeCallEvents(pass *Pass, n ast.Node, resolver func(*types.Func) *LockFact) []callEvent {
	var events []callEvent
	ast.Inspect(n, func(x ast.Node) bool {
		if _, isLit := x.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, base := callTarget(pass, call)
		if callee == nil || base == "" {
			return true
		}
		if lf := resolver(callee); lf != nil && len(lf.RequiresHeld) > 0 {
			events = append(events, callEvent{pos: call.Pos(), base: base, callee: callee, requires: lf.RequiresHeld})
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	return events
}

// heldKeys is the must-held lattice value: the set of lock keys held on
// every path reaching a point.
type heldKeys map[string]bool

func copyHeld(h heldKeys) heldKeys {
	out := make(heldKeys, len(h))
	for k := range h {
		out[k] = true
	}
	return out
}

// mustHeldFlow solves the must-held (intersection-join) lock-set
// problem over one function graph.
func mustHeldFlow(pass *Pass, g *cfg.Graph, entry heldKeys, resolver func(*types.Func) *LockFact) cfg.Result[heldKeys] {
	flow := cfg.Flow[heldKeys]{
		Entry: func() heldKeys { return copyHeld(entry) },
		Copy:  copyHeld,
		Join: func(dst, src heldKeys) (heldKeys, bool) {
			changed := false
			for k := range dst {
				if !src[k] {
					delete(dst, k)
					changed = true
				}
			}
			return dst, changed
		},
		Transfer: func(b *cfg.Block, in heldKeys) heldKeys {
			out := copyHeld(in)
			for _, n := range b.Nodes {
				for _, ev := range nodeLockEvents(pass, n, resolver) {
					for _, k := range ev.acquire {
						out[k] = true
					}
					for _, k := range ev.release {
						delete(out, k)
					}
				}
			}
			return out
		},
	}
	return cfg.Forward(g, flow)
}

// gbFunc carries one function's evolving lock-set summary.
type gbFunc struct {
	decl     *ast.FuncDecl
	obj      *types.Func
	recvName string
	// candidate functions ("Locked" suffix or requiresheld directive)
	// have their receiver-guard requirements inferred and enforced at
	// call sites rather than in the body.
	candidate bool
	explicit  []string // directive-named guards (empty = infer)
	badGuards []string // directive-named guards that don't exist

	requires map[string]bool // relative tokens
	acquires map[string]bool
	releases map[string]bool
	graph    *cfg.Graph
}

// fact renders the summary as an exportable LockFact, or nil when it
// says nothing.
func (fi *gbFunc) fact() *LockFact {
	if len(fi.requires) == 0 && len(fi.acquires) == 0 && len(fi.releases) == 0 {
		return nil
	}
	return &LockFact{
		Acquires:     sortedTokens(fi.acquires),
		Releases:     sortedTokens(fi.releases),
		RequiresHeld: sortedTokens(fi.requires),
	}
}

// entryHeld maps a candidate's requirement tokens into absolute keys.
func (fi *gbFunc) entryHeld() heldKeys {
	entry := make(heldKeys)
	if fi.recvName == "" {
		return entry
	}
	for tok := range fi.requires {
		g, read := splitToken(tok)
		entry[heldKey(fi.recvName, g, read)] = true
	}
	return entry
}

// summariesEqual compares two token-set triples.
func tokenSetsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// freshLocalObjects returns the local variables of body that are bound
// to freshly-constructed values (composite literals, new(T)): objects
// that cannot yet be shared with another goroutine, whose field
// accesses the checker therefore skips (the constructor-initialisation
// pattern).
func freshLocalObjects(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	freshRHS := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CompositeLit:
			return true
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return false
			}
			_, isLit := ast.Unparen(e.X).(*ast.CompositeLit)
			return isLit
		case *ast.CallExpr:
			id, ok := ast.Unparen(e.Fun).(*ast.Ident)
			return ok && id.Name == "new" && pass.Info.Uses[id] == nil
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || !freshRHS(n.Rhs[i]) {
					continue
				}
				if obj := pass.Info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		case *ast.ValueSpec:
			// `var s store` (zero value) and `var s = store{...}`.
			for i, name := range n.Names {
				ok := len(n.Values) == 0 && n.Type != nil
				if !ok && i < len(n.Values) {
					ok = freshRHS(n.Values[i])
				}
				if !ok {
					continue
				}
				if obj := pass.Info.Defs[name]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// rootObject resolves the leftmost identifier of an access base
// expression (the "f" of f.inner.alive), or nil.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.Info.Uses[x]; obj != nil {
				return obj
			}
			return pass.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

func runGuardedBy(pass *Pass) {
	gt := collectGuards(pass)

	// Summarise every declared function.
	var funcs []*gbFunc
	byObj := make(map[*types.Func]*gbFunc)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			_, recvName := receiverOf(pass, fd)
			fi := &gbFunc{
				decl:     fd,
				obj:      obj,
				recvName: recvName,
				requires: make(map[string]bool),
				acquires: make(map[string]bool),
				releases: make(map[string]bool),
				graph:    cfg.New(fd.Body),
			}
			args, hasDirective := requiresHeldArgs(fd)
			if recvName != "" && (hasDirective || strings.HasSuffix(fd.Name.Name, "Locked")) {
				fi.candidate = true
				fi.explicit = args
			}
			funcs = append(funcs, fi)
			byObj[obj] = fi
		}
	}

	resolver := func(fn *types.Func) *LockFact {
		if fi, same := byObj[fn]; same {
			return fi.fact()
		}
		var lf LockFact
		if pass.ImportObjectFact(fn, &lf) {
			return &lf
		}
		return nil
	}

	// Fixpoint over the package: each round recomputes every function's
	// acquires/releases/requires with the current summaries visible, so
	// wrapper-of-wrapper and Locked-helper-calls-Locked-helper chains
	// converge. Summary sets only grow, so termination is guaranteed;
	// the bound is paranoia against a pathological package.
	for round := 0; round < 16; round++ {
		changed := false
		for _, fi := range funcs {
			if summarize(pass, gt, fi, resolver) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Export the summaries for dependent packages.
	for _, fi := range funcs {
		if lf := fi.fact(); lf != nil {
			pass.ExportObjectFact(fi.obj, lf)
		}
	}

	// Checking pass: report unguarded accesses and unsatisfied
	// requires-held call sites, in every declared function and every
	// function literal (literals run with an empty entry set — a
	// goroutine body cannot inherit its spawner's locks).
	if pass.FactsOnly {
		return
	}
	for _, fi := range funcs {
		if len(fi.badGuards) > 0 {
			for _, g := range fi.badGuards {
				pass.Reportf(fi.decl.Pos(), "requiresheld directive names %q, which is not a mutex field of the receiver's struct", g)
			}
		}
		checkFunc(pass, gt, fi.graph, fi.entryHeld(), fi.decl.Body, resolver)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncLits(pass, gt, fd.Body, resolver)
		}
	}
}

// checkFuncLits analyzes every function literal under root as an
// independent function with an empty entry lock set.
func checkFuncLits(pass *Pass, gt *guardTable, root ast.Node, resolver func(*types.Func) *LockFact) {
	ast.Inspect(root, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		checkFunc(pass, gt, cfg.New(lit.Body), make(heldKeys), lit.Body, resolver)
		// Nested literals are reached through the recursive Inspect of
		// checkFunc's own body walk — stop here to avoid double reports.
		checkFuncLits(pass, gt, lit.Body, resolver)
		return false
	})
}

// summarize recomputes one function's lock-set summary, reporting
// whether anything changed.
func summarize(pass *Pass, gt *guardTable, fi *gbFunc, resolver func(*types.Func) *LockFact) bool {
	// The summary flow runs with an EMPTY entry set, even for
	// requires-held candidates: an access satisfied only by the caller's
	// lock must stay visibly unsatisfied here, or the inferred
	// requirement would evaporate on the next fixpoint round. (The
	// checking pass is what runs with the requirement pre-held.)
	res := mustHeldFlow(pass, fi.graph, make(heldKeys), resolver)

	acquires := make(map[string]bool)
	releases := make(map[string]bool)
	requires := make(map[string]bool)

	// Acquires: locks held on every return path, minus defer-released
	// ones (which fire before control reaches the caller), restricted to
	// the receiver's own locks.
	if fi.recvName != "" {
		deferred := deferReleasedKeys(pass, fi.decl.Body)
		var exitHeld heldKeys
		for _, b := range fi.graph.Reachable() {
			exits := false
			for _, s := range b.Succs {
				if s == fi.graph.Exit {
					exits = true
				}
			}
			if !exits {
				continue
			}
			out := res.Out[b]
			if exitHeld == nil {
				exitHeld = copyHeld(out)
			} else {
				for k := range exitHeld {
					if !out[k] {
						delete(exitHeld, k)
					}
				}
			}
		}
		prefix := fi.recvName + "."
		for k := range exitHeld {
			if deferred[k] || !strings.HasPrefix(k, prefix) {
				continue
			}
			rest := strings.TrimPrefix(k, prefix)
			g, read := rest, false
			if cut, ok := strings.CutSuffix(rest, readKeySuffix); ok {
				g, read = cut, true
			}
			acquires[relToken(g, read)] = true
		}

		// Releases: unlocks of receiver locks the function did not itself
		// hold at that point (unlock-wrapper helpers).
		simulate(pass, gt, fi.graph, res, resolver, func(held heldKeys, ev lockEvent) {
			for _, k := range ev.release {
				if held[k] || !strings.HasPrefix(k, prefix) {
					continue
				}
				rest := strings.TrimPrefix(k, prefix)
				g, read := rest, false
				if cut, ok := strings.CutSuffix(rest, readKeySuffix); ok {
					g, read = cut, true
				}
				releases[relToken(g, read)] = true
			}
		}, nil, nil)
	}

	// Requires: candidates accumulate the receiver guards their
	// unguarded accesses (and their calls into fellow requires-held
	// helpers) demand.
	if fi.candidate {
		if len(fi.explicit) > 0 {
			fi.badGuards = fi.badGuards[:0]
			for _, g := range fi.explicit {
				if receiverHasMutexField(pass, fi.decl, g) {
					requires[g] = true
				} else if !contains(fi.badGuards, g) {
					fi.badGuards = append(fi.badGuards, g)
				}
			}
		} else {
			simulate(pass, gt, fi.graph, res, resolver, nil, func(held heldKeys, ev accessEvent) {
				if ev.base != fi.recvName {
					return
				}
				if heldSatisfies(held, ev.base, ev.ref.guard, !ev.write && ev.ref.rw) {
					return
				}
				if ev.write || !ev.ref.rw {
					// A write (or any access through a plain Mutex)
					// demands the write lock, upgrading an earlier
					// read-only requirement.
					delete(requires, relToken(ev.ref.guard, true))
					requires[relToken(ev.ref.guard, false)] = true
					return
				}
				if !requires[relToken(ev.ref.guard, false)] {
					requires[relToken(ev.ref.guard, true)] = true
				}
			}, func(held heldKeys, ev callEvent) {
				if ev.base != fi.recvName {
					return
				}
				for _, tok := range ev.requires {
					g, read := splitToken(tok)
					if heldSatisfies(held, ev.base, g, read) {
						continue
					}
					if read && requires[relToken(g, false)] {
						continue
					}
					requires[tok] = true
				}
			})
			// Keep the stronger write requirement only.
			for tok := range requires {
				if g, read := splitToken(tok); read && requires[relToken(g, false)] {
					delete(requires, tok)
				}
			}
		}
	}

	changed := !tokenSetsEqual(acquires, fi.acquires) ||
		!tokenSetsEqual(releases, fi.releases) ||
		!tokenSetsEqual(requires, fi.requires)
	fi.acquires, fi.releases, fi.requires = acquires, releases, requires
	return changed
}

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// receiverHasMutexField reports whether the receiver's struct type has
// a mutex field named g.
func receiverHasMutexField(pass *Pass, fd *ast.FuncDecl, g string) bool {
	recv, _ := receiverOf(pass, fd)
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() != g {
			continue
		}
		isMu, _ := mutexKind(f.Type())
		return isMu
	}
	return false
}

// simulate replays the solved flow block by block, node by node, event
// by event (lock ops, guarded accesses and requires-held calls merged
// in position order), invoking the non-nil callbacks with the held set
// as it stood immediately before each event.
func simulate(pass *Pass, gt *guardTable, g *cfg.Graph, res cfg.Result[heldKeys],
	resolver func(*types.Func) *LockFact,
	onLock func(heldKeys, lockEvent),
	onAccess func(heldKeys, accessEvent),
	onCall func(heldKeys, callEvent)) {
	for _, b := range g.Reachable() {
		in, ok := res.In[b]
		if !ok {
			continue
		}
		held := copyHeld(in)
		for _, n := range b.Nodes {
			locks := nodeLockEvents(pass, n, resolver)
			accesses := nodeAccessEvents(gt, n)
			var calls []callEvent
			if onCall != nil {
				calls = nodeCallEvents(pass, n, resolver)
			}
			li, ai, ci := 0, 0, 0
			next := func() (token.Pos, int) {
				best, kind := token.Pos(-1), -1
				if li < len(locks) {
					best, kind = locks[li].pos, 0
				}
				if ai < len(accesses) && (kind == -1 || accesses[ai].pos < best) {
					best, kind = accesses[ai].pos, 1
				}
				if ci < len(calls) && (kind == -1 || calls[ci].pos < best) {
					best, kind = calls[ci].pos, 2
				}
				return best, kind
			}
			for {
				_, kind := next()
				if kind == -1 {
					break
				}
				switch kind {
				case 0:
					ev := locks[li]
					li++
					if onLock != nil {
						onLock(held, ev)
					}
					for _, k := range ev.acquire {
						held[k] = true
					}
					for _, k := range ev.release {
						delete(held, k)
					}
				case 1:
					if onAccess != nil {
						onAccess(held, accesses[ai])
					}
					ai++
				case 2:
					if onCall != nil {
						onCall(held, calls[ci])
					}
					ci++
				}
			}
		}
	}
}

// checkFunc reports unguarded accesses and unsatisfied requires-held
// calls in one function body.
func checkFunc(pass *Pass, gt *guardTable, g *cfg.Graph, entry heldKeys, body *ast.BlockStmt, resolver func(*types.Func) *LockFact) {
	res := mustHeldFlow(pass, g, entry, resolver)
	fresh := freshLocalObjects(pass, body)
	reported := make(map[token.Pos]bool)
	simulate(pass, gt, g, res, resolver, nil, func(held heldKeys, ev accessEvent) {
		if reported[ev.pos] {
			return
		}
		if obj := rootObject(pass, ev.sel.X); obj != nil && fresh[obj] {
			return // unpublished constructor-local value
		}
		verb := "read"
		if ev.write {
			verb = "written"
		}
		need := heldKey(ev.base, ev.ref.guard, false)
		if ev.write || !ev.ref.rw {
			if !held[need] {
				reported[ev.pos] = true
				if ev.write && ev.ref.rw && held[heldKey(ev.base, ev.ref.guard, true)] {
					pass.Reportf(ev.pos, "guarded field %s is written while holding only %s.RLock(); writes need %s.Lock()",
						types.ExprString(ev.sel), need, need)
					return
				}
				pass.Reportf(ev.pos, "guarded field %s is %s without holding %s (//ecolint:guardedby %s)",
					types.ExprString(ev.sel), verb, need, ev.ref.guard)
			}
			return
		}
		// Read of an RWMutex-guarded field: either half will do.
		if !heldSatisfies(held, ev.base, ev.ref.guard, true) {
			reported[ev.pos] = true
			pass.Reportf(ev.pos, "guarded field %s is read without holding %s or %s.RLock() (//ecolint:guardedby %s)",
				types.ExprString(ev.sel), need, ev.base+"."+ev.ref.guard, ev.ref.guard)
		}
	}, func(held heldKeys, ev callEvent) {
		for _, tok := range ev.requires {
			gname, read := splitToken(tok)
			if heldSatisfies(held, ev.base, gname, read) {
				continue
			}
			if reported[ev.pos] {
				continue
			}
			if root := rootObjectOfBase(pass, ev, body); root != nil && fresh[root] {
				continue
			}
			reported[ev.pos] = true
			pass.Reportf(ev.pos, "call to %s requires %s held (//ecolint:requiresheld contract)",
				ev.callee.Name(), describeToken(ev.base, tok))
		}
	})
}

// rootObjectOfBase finds the root object of a call event's receiver
// base by scanning the body for the call expression (the event carries
// only the printed base, so resolve through the AST at its position).
func rootObjectOfBase(pass *Pass, ev callEvent, body *ast.BlockStmt) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() != ev.pos {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			obj = rootObject(pass, sel.X)
		}
		return false
	})
	return obj
}
