package analysis

import (
	"go/ast"
	"go/constant"
	"path"
	"regexp"
	"strings"
)

// metricConstructors are the telemetry functions and Registry methods whose
// first argument is a metric family name.
var metricConstructors = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
	"NewCounter": true, "NewGauge": true, "NewHistogram": true,
	"NewCounterVec": true, "NewGaugeVec": true, "NewHistogramVec": true,
}

// metricNameRe is the repository-wide naming convention:
// ecocapsule_<pkg>_<name>, all lowercase, underscore-separated.
var metricNameRe = regexp.MustCompile(`^ecocapsule_[a-z][a-z0-9]*_[a-z0-9_]+$`)

// MetricName enforces the metric naming convention on every telemetry
// constructor call with a constant name: the name must match
// ecocapsule_<pkg>_<name> and <pkg> must be the base name of the defining
// package, so a scrape of /metrics maps each family straight back to the
// code that emits it. Dynamic (non-constant) names are not checked. The
// telemetry package itself is exempt — it defines the constructors.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc: "flags telemetry metric names that do not follow ecocapsule_<pkg>_<name> " +
		"with <pkg> equal to the defining package's base name",
	Run: runMetricName,
}

func runMetricName(pass *Pass) {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/telemetry") {
		return
	}
	self := path.Base(pass.Pkg.Path())
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || !metricConstructors[fn.Name()] {
				return true
			}
			if path.Base(fn.Pkg().Path()) != "telemetry" {
				return true
			}
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // dynamic names cannot be checked statically
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRe.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q does not match ecocapsule_<pkg>_<name> (lowercase, underscore-separated)", name)
				return true
			}
			pkgSeg := strings.SplitN(strings.TrimPrefix(name, "ecocapsule_"), "_", 2)[0]
			if pkgSeg != self {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q claims package %q; metrics defined here must use ecocapsule_%s_<name>", name, pkgSeg, self)
			}
			return true
		})
	}
}
