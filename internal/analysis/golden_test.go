package analysis_test

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"ecocapsule/internal/analysis"
)

// wantRe extracts the quoted patterns of a `// want "p1" "p2"` comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)
var wantPatternRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"` + "|`([^`]*)`")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// loadFixture type-checks every package under testdata/src/<name>,
// deepest-first so that fixture packages can import their own sub-packages
// (e.g. errchecklite imports errchecklite/internal/coding).
func loadFixture(t *testing.T, name string) []*analysis.Package {
	t.Helper()
	root := filepath.Join("testdata", "src", name)
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				dirs = append(dirs, path)
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", root, err)
	}
	sort.Slice(dirs, func(i, j int) bool {
		return strings.Count(dirs[i], string(filepath.Separator)) > strings.Count(dirs[j], string(filepath.Separator))
	})
	loader := analysis.NewLoader()
	var pkgs []*analysis.Package
	srcRoot := filepath.Join("testdata", "src")
	for _, dir := range dirs {
		rel, err := filepath.Rel(srcRoot, dir)
		if err != nil {
			t.Fatalf("rel path for %s: %v", dir, err)
		}
		importPath := filepath.ToSlash(rel)
		pkg, err := loader.CheckFixture(importPath, dir)
		if err != nil {
			t.Fatalf("type-checking fixture %s: %v", importPath, err)
		}
		pkgs = append(pkgs, pkg)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s contains no packages", name)
	}
	return pkgs
}

// collectWants reads the `// want` expectations out of the fixture sources.
func collectWants(t *testing.T, pkgs []*analysis.Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, pm := range wantPatternRe.FindAllStringSubmatch(m[1], -1) {
						text := pm[1]
						if pm[2] != "" {
							text = pm[2]
						}
						re, err := regexp.Compile(text)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, text, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}
	return wants
}

// checkGolden diffs reported diagnostics against the fixture expectations.
func checkGolden(t *testing.T, pkgs []*analysis.Package, analyzers []*analysis.Analyzer) {
	t.Helper()
	wants := collectWants(t, pkgs)
	diags := analysis.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

func TestGolden(t *testing.T) {
	cases := []struct {
		fixture  string
		analyzer *analysis.Analyzer
	}{
		{"unitsafety", analysis.UnitSafety},
		{"locksafety", analysis.LockSafety},
		{"leakcheck", analysis.LeakCheck},
		{"errchecklite", analysis.ErrCheckLite},
		{"floatcmp", analysis.FloatCmp},
		{"metricname", analysis.MetricName},
		{"determinism", analysis.Determinism},
		{"guardedby", analysis.GuardedBy},
		{"closurecapture", analysis.ClosureCapture},
		{"atomicmix", analysis.AtomicMix},
		{"dimcheck", analysis.DimCheck},
		{"hotalloc", analysis.HotAlloc},
		{"suppress", analysis.UnitSafety},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			checkGolden(t, loadFixture(t, c.fixture), []*analysis.Analyzer{c.analyzer})
		})
	}
}

// TestIgnoreMissingReason verifies that a reason-less directive suppresses
// nothing and is itself reported. (It cannot be a `// want` fixture: a want
// comment appended to the directive line would parse as the reason.)
func TestIgnoreMissingReason(t *testing.T) {
	pkgs := loadFixture(t, "suppressbad")
	diags := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{analysis.UnitSafety})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(diags), diagList(diags))
	}
	if diags[0].Analyzer != "ecolint" || !strings.Contains(diags[0].Message, "missing a reason") {
		t.Errorf("first diagnostic should flag the malformed directive, got: %s", diags[0])
	}
	if diags[1].Analyzer != "unitsafety" {
		t.Errorf("the magic literal must not be suppressed by a reason-less directive, got: %s", diags[1])
	}
}

// TestRunOnRealRepo analyzes the repository itself — test files included,
// cache disabled — and asserts the committed tree is clean: the same gate
// verify.sh applies in CI.
func TestRunOnRealRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checking the whole module is not short-mode work")
	}
	diags, stats, err := analysis.Run(analysis.Options{IncludeTests: true}, "ecocapsule/...")
	if err != nil {
		t.Fatalf("running analyzers over the module: %v", err)
	}
	if stats.Targets == 0 {
		t.Fatal("matched no packages")
	}
	if len(diags) > 0 {
		t.Errorf("committed tree has %d findings:\n%s", len(diags), diagList(diags))
	}
}

func diagList(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}
