package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// HotpathDirective marks a function whose warm-path calls must not
// allocate:
//
//	//ecolint:hotpath
//
// placed in the function's doc comment. The hotalloc analyzer checks
// the body of every marked function for heap-allocating constructs and
// flags calls into functions that (transitively) allocate unless the
// callee is itself hotpath-certified — a marked callee's body has
// already been audited in its own package, so cross-package warm chains
// compose without re-walking. Deliberate allocations (grow-on-cap-miss,
// cold plan builds) carry //ecolint:ignore hotalloc <reason>.
const HotpathDirective = "//ecolint:hotpath"

// AllocFact records that a function heap-allocates, directly or
// transitively. Construct is the root cause ("a make call", "a
// composite literal", ...); Via is the first callee on the path, ""
// when the function allocates directly.
type AllocFact struct {
	Construct string `json:"construct"`
	Via       string `json:"via,omitempty"`
}

// AFact marks AllocFact as a fact.
func (*AllocFact) AFact() {}

// HotFact certifies a //ecolint:hotpath function: its body was checked
// in its own package, so hot callers treat calls to it as clean.
type HotFact struct{}

// AFact marks HotFact as a fact.
func (*HotFact) AFact() {}

// HotAlloc turns the PR-7 zero-alloc warm paths from a test-only
// property into a lint invariant. AllocsPerRun catches a regression
// only on the exact inputs a test drives; this check covers every
// construct the compiler could heap-allocate on any path: composite
// literals, make/new, append onto fresh slices, closures that capture,
// interface boxing, and string<->[]byte conversions, plus — through
// cross-package AllocFacts — calls into anything that transitively
// allocates.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Version:   "1",
	UsesFacts: true,
	Doc: "flags heap-allocating constructs (make/new, composite literals, fresh-slice append, " +
		"capturing closures, interface boxing, string conversions) in //ecolint:hotpath functions " +
		"and calls from them into transitively allocating code",
	Run: runHotAlloc,
}

// allocAt is one direct allocating construct in a body.
type allocAt struct {
	pos  token.Pos
	desc string // "a make call", "a composite literal", ...
	what string // rendered diagnostic detail
}

// haFunc is one declared function's allocation summary.
type haFunc struct {
	obj    *types.Func
	decl   *ast.FuncDecl
	hot    bool
	allocs []allocAt
	calls  []callAt // reuses determinism's resolved-call record
	fact   *AllocFact
}

func runHotAlloc(pass *Pass) {
	// Pass 1: summarise every declared function — hotpath mark, direct
	// allocating constructs, outgoing calls.
	var funcs []*haFunc
	byObj := make(map[*types.Func]*haFunc)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			_, hot := directiveArgs(fd.Doc, HotpathDirective)
			fi := &haFunc{obj: obj, decl: fd, hot: hot}
			summariseAllocs(pass, fd.Body, fi)
			funcs = append(funcs, fi)
			byObj[obj] = fi
		}
	}

	// Pass 2: propagate "transitively allocates" to a fixpoint.
	// Hotpath functions are certified, not propagated: their deliberate
	// (suppressed) grow-path allocations must not taint callers that
	// stay on the warm path.
	for _, fi := range funcs {
		if fi.hot {
			continue
		}
		if len(fi.allocs) > 0 {
			fi.fact = &AllocFact{Construct: fi.allocs[0].desc}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.fact != nil || fi.hot {
				continue
			}
			for _, c := range fi.calls {
				if desc, via, ok := calleeAllocates(pass, byObj, c.callee); ok {
					fi.fact = &AllocFact{Construct: desc, Via: via}
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: export facts. HotFacts certify marked functions for
	// cross-package callers; AllocFacts only matter for objects a
	// dependent package can name, so unexported plain functions are
	// skipped to keep cache entries lean.
	for _, fi := range funcs {
		if fi.hot {
			pass.ExportObjectFact(fi.obj, &HotFact{})
			continue
		}
		if fi.fact != nil && fi.obj.Exported() {
			pass.ExportObjectFact(fi.obj, fi.fact)
		}
	}

	// Pass 4: report inside hotpath bodies.
	if pass.FactsOnly {
		return
	}
	for _, fi := range funcs {
		if !fi.hot {
			continue
		}
		for _, a := range fi.allocs {
			pass.Reportf(a.pos, "%s in hotpath function %s allocates because %s", a.what, fi.obj.Name(), a.desc)
		}
		for _, c := range fi.calls {
			if desc, via, ok := calleeAllocates(pass, byObj, c.callee); ok {
				because := "it reaches " + desc
				if via != "" && via != qualifiedName(pass, c.callee) {
					because += " via " + via
				}
				pass.Reportf(c.pos, "call to %s in hotpath function %s allocates because %s",
					qualifiedName(pass, c.callee), fi.obj.Name(), because)
			}
		}
	}
}

// calleeAllocates reports whether calling fn can heap-allocate, with
// the root construct and the via link for the message. Hot-certified
// callees are clean by contract.
func calleeAllocates(pass *Pass, byObj map[*types.Func]*haFunc, fn *types.Func) (desc, via string, ok bool) {
	if fn == nil {
		return "", "", false
	}
	if fi, same := byObj[fn]; same {
		if fi.hot || fi.fact == nil {
			return "", "", false
		}
		if fi.fact.Via != "" {
			return fi.fact.Construct, fi.fact.Via, true
		}
		return fi.fact.Construct, qualifiedName(pass, fn), true
	}
	var hot HotFact
	if pass.ImportObjectFact(fn, &hot) {
		return "", "", false
	}
	var fact AllocFact
	if pass.ImportObjectFact(fn, &fact) {
		if fact.Via != "" {
			return fact.Construct, fact.Via, true
		}
		return fact.Construct, qualifiedName(pass, fn), true
	}
	if d := stdlibAllocDesc(fn); d != "" {
		return d, "", true
	}
	return "", "", false
}

// stdlibAllocDesc classifies standard-library callees with no facts:
// a short deny-list of certainly-allocating entry points; everything
// else (math, copy-style helpers, sync.Pool methods) is presumed clean
// so hot code can use the runtime's own zero-alloc primitives.
func stdlibAllocDesc(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return "" // stdlib methods in use here (pool.Get/Put, ...) are warm-clean
	}
	name := fn.Name()
	switch pkg.Path() {
	case "fmt":
		return "fmt." + name + " (formats into fresh allocations)"
	case "errors":
		if name == "New" || name == "Join" {
			return "errors." + name + " (builds a new error value)"
		}
	case "sort":
		if name == "Slice" || name == "SliceStable" || name == "SliceIsSorted" {
			return "sort." + name + " (boxes the slice into an interface)"
		}
	case "strings", "bytes":
		switch name {
		case "Repeat", "Join", "Split", "SplitN", "Fields", "Map", "Replace", "ReplaceAll", "Clone", "ToUpper", "ToLower", "TrimSpace":
			return pkg.Path() + "." + name + " (returns freshly built data)"
		}
	case "strconv":
		switch name {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "Quote", "AppendFloat", "AppendInt":
			return "strconv." + name + " (formats into fresh allocations)"
		}
	}
	return ""
}

// summariseAllocs walks one function body recording direct allocating
// constructs and outgoing calls. Function literal bodies are skipped:
// the literal itself is charged here (as a closure, when it captures),
// and its body runs under whatever discipline its call site has.
func summariseAllocs(pass *Pass, body *ast.BlockStmt, fi *haFunc) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := capturedOuterLocal(pass, n); capt != "" {
				fi.allocs = append(fi.allocs, allocAt{
					pos:  n.Pos(),
					desc: "a closure",
					what: "function literal capturing " + capt,
				})
			}
			return false
		case *ast.CallExpr:
			summariseCall(pass, n, fi)
		case *ast.CompositeLit:
			if desc, what, ok := compositeAllocates(pass, n); ok {
				fi.allocs = append(fi.allocs, allocAt{pos: n.Pos(), desc: desc, what: what})
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					fi.allocs = append(fi.allocs, allocAt{
						pos:  n.Pos(),
						desc: "a composite literal",
						what: "&" + typeLabel(pass, lit) + "{...}",
					})
					// The literal itself is covered by the &T{...}
					// report; don't double-flag value-struct contents.
				}
			}
		case *ast.AssignStmt:
			summariseBoxingAssign(pass, n, fi)
		}
		return true
	})
	sort.Slice(fi.allocs, func(i, j int) bool { return fi.allocs[i].pos < fi.allocs[j].pos })
	sort.Slice(fi.calls, func(i, j int) bool { return fi.calls[i].pos < fi.calls[j].pos })
}

// summariseCall classifies one call expression: builtin allocators,
// string conversions, interface-boxing arguments, or a plain outgoing
// call edge.
func summariseCall(pass *Pass, call *ast.CallExpr, fi *haFunc) {
	// Conversions: string <-> []byte/[]rune copy their operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			if from, to, bad := stringConversion(tv.Type, pass.TypeOf(call.Args[0])); bad {
				fi.allocs = append(fi.allocs, allocAt{
					pos:  call.Pos(),
					desc: "a string conversion",
					what: "conversion from " + from + " to " + to,
				})
			}
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				fi.allocs = append(fi.allocs, allocAt{pos: call.Pos(), desc: "a make call", what: "make(" + typeLabelOf(pass, call) + ")"})
			case "new":
				fi.allocs = append(fi.allocs, allocAt{pos: call.Pos(), desc: "a new call", what: "new(...)"})
			case "append":
				if appendStartsFresh(call) {
					fi.allocs = append(fi.allocs, allocAt{
						pos:  call.Pos(),
						desc: "an append onto a fresh slice",
						what: "append onto a non-reused slice",
					})
				}
			}
			return
		}
	}
	fn := calleeFunc(pass, call)
	if fn == nil {
		return // dynamic call through a func value or interface: no summary
	}
	fi.calls = append(fi.calls, callAt{pos: call.Pos(), callee: fn})
	summariseBoxingArgs(pass, call, fn, fi)
}

// appendStartsFresh reports whether an append call builds a new slice
// rather than growing one amortised in place: the grow idiom
// `x = append(x, ...)` is exempt; `append([]byte(nil), ...)` and
// appends whose result lands in a different variable are not. The
// syntactic check runs over the enclosing statement, so only appends
// used outside the reuse idiom are counted — conservatively, any
// append whose first argument is a nil literal, a conversion or a
// fresh literal.
func appendStartsFresh(call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	switch arg := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		return arg.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return true // append([]byte(nil), ...), append(clone(x), ...)
	}
	return false
}

// summariseBoxingArgs flags arguments whose concrete non-pointer-shaped
// values convert to interface parameters (each such conversion heap-
// allocates the boxed copy). Pointer-shaped values (pointers, maps,
// channels, funcs) ride in the interface word for free.
func summariseBoxingArgs(pass *Pass, call *ast.CallExpr, fn *types.Func, fi *haFunc) {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return
	}
	if stdlibAllocDesc(fn) != "" {
		return // the call itself is already flagged; boxing is implied
	}
	n := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if s, ok := sig.Params().At(n - 1).Type().(*types.Slice); ok && !call.Ellipsis.IsValid() {
				pt = s.Elem()
			}
		case i < n:
			pt = sig.Params().At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
			continue // constants box to static read-only data
		}
		at := pass.TypeOf(arg)
		if at == nil || !boxingAllocates(at) {
			continue
		}
		fi.allocs = append(fi.allocs, allocAt{
			pos:  arg.Pos(),
			desc: "an interface conversion",
			what: "argument " + types.ExprString(arg) + " boxed into " + pt.String(),
		})
	}
}

// summariseBoxingAssign flags `var x any = concrete` style stores into
// interface-typed targets.
func summariseBoxingAssign(pass *Pass, a *ast.AssignStmt, fi *haFunc) {
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i, lhs := range a.Lhs {
		lt := pass.TypeOf(lhs)
		if lt == nil {
			continue
		}
		if _, isIface := lt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if tv, ok := pass.Info.Types[a.Rhs[i]]; ok && tv.Value != nil {
			continue // constants box to static read-only data
		}
		rt := pass.TypeOf(a.Rhs[i])
		if rt == nil || !boxingAllocates(rt) {
			continue
		}
		fi.allocs = append(fi.allocs, allocAt{
			pos:  a.Rhs[i].Pos(),
			desc: "an interface conversion",
			what: types.ExprString(a.Rhs[i]) + " boxed into " + lt.String(),
		})
	}
}

// boxingAllocates reports whether converting a value of type t to an
// interface heap-allocates: true for everything that is not already an
// interface or pointer-shaped.
func boxingAllocates(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() != types.UntypedNil && b.Kind() != types.UnsafePointer
	}
	return true
}

// compositeAllocates classifies a composite literal: slice and map
// literals always allocate backing storage; value struct and array
// literals live in the frame (the escaping &T{...} form is flagged at
// its unary & site).
func compositeAllocates(pass *Pass, lit *ast.CompositeLit) (desc, what string, ok bool) {
	t := pass.TypeOf(lit)
	if t == nil {
		return "", "", false
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "a composite literal", typeLabel(pass, lit) + "{...} slice literal", true
	case *types.Map:
		return "a composite literal", typeLabel(pass, lit) + "{...} map literal", true
	}
	return "", "", false
}

// stringConversion reports string <-> []byte/[]rune conversions, which
// copy their operand into fresh storage.
func stringConversion(to, from types.Type) (fromLabel, toLabel string, bad bool) {
	if to == nil || from == nil {
		return "", "", false
	}
	isString := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteOrRuneSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	switch {
	case isString(to) && isByteOrRuneSlice(from):
		return from.String(), "string", true
	case isByteOrRuneSlice(to) && isString(from):
		return "string", to.String(), true
	}
	return "", "", false
}

// capturedOuterLocal returns the name of one variable a function
// literal captures from an enclosing function (forcing a heap-
// allocated closure), or "" when the literal is capture-free — a
// capture-free literal compiles to a static function value.
func capturedOuterLocal(pass *Pass, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || v.Pkg() != pass.Pkg || v.IsField() {
			return true
		}
		if v.Parent() == pass.Pkg.Scope() {
			return true // package-level var: no capture
		}
		// Any local declared outside the literal is a capture
		// (enclosing-function locals, parameters, receivers).
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = id.Name
		}
		return true
	})
	return captured
}

// typeLabelOf renders the made type of a make call.
func typeLabelOf(pass *Pass, call *ast.CallExpr) string {
	if t := pass.TypeOf(call); t != nil {
		return t.String()
	}
	return "..."
}

// typeLabel renders a composite literal's type compactly.
func typeLabel(pass *Pass, lit *ast.CompositeLit) string {
	if t := pass.TypeOf(lit); t != nil {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name()
		}
		return t.String()
	}
	return "..."
}
