// Footbridge: the §6 pilot study end-to-end — replay the simulated
// July-2021 month on the 84.24 m butterfly-arch footbridge, fuse the
// conventional and EcoCapsule telemetry, detect the tropical-cyclone
// window, and grade the per-section health in real time.
package main

import (
	"fmt"
	"math"

	"ecocapsule/internal/bridge"
	"ecocapsule/internal/dsp"
	"ecocapsule/internal/shm"
)

func main() {
	sim := bridge.NewSim(2021)
	layout := bridge.ConventionalLayout()
	fmt.Printf("footbridge: %.2f m total (%.2f m main span), %d conventional sensors\n",
		bridge.TotalLengthM, bridge.MainSpanM, len(layout))

	// Replay the month.
	month := sim.SimulateMonth()

	// Daily digest: acceleration RMS and mean stress.
	fmt.Println("\nday  accelRMS(m/s²)  stress(MPa)  peds/h  weather")
	for day := 0; day < 31; day++ {
		a, b := day*24, (day+1)*24
		accRMS := dsp.RMS(month.Acceleration[a:b])
		stress := dsp.Mean(month.Stress[a:b])
		var peds float64
		for _, p := range month.Pedestrians[a:b] {
			peds += float64(p)
		}
		peds /= 24
		w := sim.WeatherAt(a + 12)
		tag := ""
		if w.Storm {
			tag = "tropical cyclone"
		}
		fmt.Printf("7/%02d   %.4f         %6.1f      %5.1f  %s\n",
			day+1, accRMS, stress, peds, tag)
	}

	// Anomaly detection over the hourly acceleration series.
	det := shm.NewAnomalyDetector()
	anomalies := det.Detect(month.Acceleration)
	fmt.Println("\ndetected anomalies (acceleration series):")
	for _, an := range anomalies {
		fmt.Printf("  7/%d → 7/%d: RMS %.4f vs baseline %.4f (%.1f×)\n",
			an.Start/24+1, (an.End-1)/24+1, an.RMS, an.Baseline, an.RMS/an.Baseline)
	}

	// Structural threshold audit (§6 limits).
	th := shm.FootbridgeThresholds()
	violations := 0
	for h := range month.Acceleration {
		v := th.Check(shm.Measurement{
			VerticalAccel: math.Abs(month.Acceleration[h]),
			SteelStress:   math.Abs(month.Stress[h]),
			PAO:           5,
		})
		violations += len(v)
	}
	fmt.Printf("\nstructural threshold violations this month: %d\n", violations)

	// Per-section live health at the evening rush of a calm day and of a
	// storm day (Fig. 21c).
	for _, hour := range []int{10*24 + 18, 18*24 + 18} {
		status, err := sim.SectionStatus(hour)
		if err != nil {
			panic(err)
		}
		w := sim.WeatherAt(hour)
		label := "calm"
		if w.Storm {
			label = "storm"
		}
		fmt.Printf("\nsection health at 7/%d 18:00 (%s):\n", hour/24+1, label)
		for _, s := range status {
			fmt.Printf("  section %s: no. %d, health %s, speed %.1f m/s\n",
				s.Section, s.Pedestrians, s.Level, s.SpeedMS)
		}
	}

	// The EcoCapsule view: what the five embedded capsules report during
	// the storm peak vs a calm noon.
	fmt.Println("\nEcoCapsule in-concrete readings:")
	for _, hour := range []int{10 * 24, 18*24 + 3} {
		env := sim.CapsuleEnvironment(hour)
		fmt.Printf("  7/%02d %02d:00  accel %+.4f m/s²  stress %6.1f MPa  %4.1f °C  %3.0f %%RH\n",
			hour/24+1, hour%24, env.AccelerationMS2, env.StressMPa,
			env.TemperatureC, env.RelativeHumidity)
	}

	// Modal health check: estimate the deck's fundamental mode from a
	// high-rate vibration burst and compare against the healthy baseline.
	const fsHz = 50.0
	baseline, err := shm.EstimateNaturalFrequency(sim.VibrationBurst(12, fsHz, 120), fsHz, 0.5, 5)
	if err != nil {
		panic(err)
	}
	damagedSim := bridge.NewSim(2022)
	damagedSim.SetDamage(0.2)
	current, err := shm.EstimateNaturalFrequency(damagedSim.VibrationBurst(12, fsHz, 120), fsHz, 0.5, 5)
	if err != nil {
		panic(err)
	}
	idx := shm.ModalDamageIndex(baseline.FrequencyHz, current.FrequencyHz)
	fmt.Printf("\nmodal analysis: healthy %.2f Hz, hypothetical-damage scenario %.2f Hz\n",
		baseline.FrequencyHz, current.FrequencyHz)
	fmt.Printf("stiffness-loss index %.2f → severity %s\n", idx, shm.ClassifyModalDamage(idx))
}
