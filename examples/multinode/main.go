// Multinode: a dense deployment of capsules in one wall, exercising the
// TDMA inventory (slotted ALOHA with adaptive Q) and the per-node BLF plan
// that keeps the uplinks separable in the spectrum — the §3.4 scaling
// story.
package main

import (
	"fmt"
	"log"

	"ecocapsule"
	"ecocapsule/internal/phy"
	"ecocapsule/internal/protocol"
)

func main() {
	wall := ecocapsule.Wall()
	cast, err := ecocapsule.NewCasting(wall)
	if err != nil {
		log.Fatal(err)
	}

	// Ten capsules concentrated in the first 4 m of the wall so they all
	// sit inside the 200 V power-up range.
	const n = 10
	for i := 0; i < n; i++ {
		capsule := ecocapsule.NewNode(ecocapsule.NodeConfig{
			Handle:   uint16(0x100 + i),
			Position: ecocapsule.Position(0.5+0.35*float64(i), 10, 0.1),
			Seed:     int64(i),
		})
		if err := cast.Mix(capsule); err != nil {
			log.Fatalf("capsule %d: %v", i, err)
		}
	}
	rep := cast.Seal()
	fmt.Printf("cast %d capsules (CT intact: %v)\n", rep.Capsules, rep.Intact())

	rd, err := cast.AttachReader(ecocapsule.ReaderConfig{
		TXPosition:   ecocapsule.Position(0.1, 10, 0),
		DriveVoltage: 220,
		Seed:         99,
	})
	if err != nil {
		log.Fatal(err)
	}
	up := rd.Charge(0.5)
	fmt.Printf("%d/%d capsules powered up\n", up, n)

	// Inventory with collision accounting.
	inv := rd.Inventory(32)
	fmt.Printf("inventory: %d discovered, %d rounds, %d collisions, %d empty slots\n",
		len(inv.Discovered), inv.Rounds, inv.Collisions, inv.Empties)
	for _, h := range inv.Discovered {
		fmt.Printf("  capsule %#04x\n", h)
	}

	// Assign each discovered capsule its own backscatter link frequency so
	// simultaneous uplinks separate in the spectrum (Appendix C).
	plan := phy.DefaultBLFPlan()
	fmt.Println("BLF plan (offsets from the 230 kHz carrier):")
	for i, h := range inv.Discovered {
		fmt.Printf("  capsule %#04x → +%.1f kHz\n", h, plan.Offset(i)/1000)
	}

	// Theoretical slotted-ALOHA efficiency at the matched Q.
	for _, q := range []int{2, 3, 4, 5} {
		eff := protocol.ExpectedEfficiency(up, q)
		fmt.Printf("Q=%d (%2d slots): expected efficiency %.2f successes/slot\n",
			q, 1<<uint(q), eff)
	}
}
