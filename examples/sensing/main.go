// Sensing: long-term in-concrete condition monitoring with alarm
// thresholds — the scenario the paper's introduction motivates (detecting
// the slow degradation that preceded the Champlain Towers collapse). A
// protective wall is cast with capsules; we replay a year of accelerating
// water-ingress corrosion and watch the strain/humidity trends cross their
// alarm thresholds long before failure.
package main

import (
	"fmt"
	"log"
	"math"

	"ecocapsule"
)

// degradation models slow water penetration: internal humidity and strain
// creep up super-linearly in the damaged region near x≈2 m.
func degradation(month int, pos ecocapsule.Vec3) ecocapsule.Environment {
	t := float64(month) / 12
	// Damage intensity peaks near the leak and decays with distance.
	proximity := math.Exp(-((pos.X - 2.0) * (pos.X - 2.0)) / 2)
	damage := t * t * proximity
	return ecocapsule.Environment{
		TemperatureC:     22 + 6*math.Sin(2*math.Pi*float64(month)/12),
		RelativeHumidity: 62 + 33*damage,
		StrainX:          (40 + 700*damage) * 1e-6,
		StrainY:          (25 + 450*damage) * 1e-6,
		StressMPa:        -45 - 20*damage,
	}
}

func main() {
	wall := ecocapsule.ProtectiveWall()
	cast, err := ecocapsule.NewCasting(wall)
	if err != nil {
		log.Fatal(err)
	}
	// Capsules at 1, 2, 3, 6 m: two near the (future) leak, two remote.
	positions := []float64{1, 2, 3, 6}
	for i, x := range positions {
		capsule := ecocapsule.NewNode(ecocapsule.NodeConfig{
			Handle:   uint16(0x20 + i),
			Position: ecocapsule.Position(x, 10, 0.25),
			Seed:     int64(i),
		})
		if err := cast.Mix(capsule); err != nil {
			log.Fatal(err)
		}
	}
	cast.Seal()
	rd, err := cast.AttachReader(ecocapsule.ReaderConfig{
		TXPosition:   ecocapsule.Position(0.1, 10, 0),
		DriveVoltage: 220,
		Seed:         5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Alarm thresholds for reinforced concrete condition.
	const (
		humidityAlarm = 85.0  // %RH: sustained saturation corrodes rebar
		strainAlarm   = 400.0 // µε: approaching the NC cracking strain
	)

	fmt.Println("month  capsule   strainX(µε)  RH(%)   status")
	month := 0
	alarmed := map[uint16]bool{}
	for ; month <= 24; month += 3 {
		m := month
		rd.SetEnvironment(func(pos ecocapsule.Vec3) ecocapsule.Environment {
			return degradation(m, pos)
		})
		if rd.Charge(0.5) == 0 {
			log.Fatal("no capsule powered up")
		}
		inv := rd.Inventory(16)
		for _, h := range inv.Discovered {
			strain, err := rd.ReadSensor(h, ecocapsule.Strain)
			if err != nil {
				continue
			}
			th, err := rd.ReadSensor(h, ecocapsule.TempHumidity)
			if err != nil {
				continue
			}
			ux := strain[0] * 1e6
			rh := th[1]
			status := "ok"
			if ux > strainAlarm || rh > humidityAlarm {
				status = "ALARM"
				if !alarmed[h] {
					alarmed[h] = true
					status = "ALARM (first)"
				}
			}
			fmt.Printf("%5d  %#04x     %8.0f   %5.1f   %s\n", month, h, ux, rh, status)
		}
	}

	fmt.Printf("\n%d capsule(s) raised degradation alarms; the capsules near the\n", len(alarmed))
	fmt.Println("leak (x≈2 m) alarm first, localising the damage years before failure —")
	fmt.Println("the monitoring the paper argues could have caught the Surfside collapse.")
}
