// Localization: after the pour, nobody knows exactly where the capsules
// settled (§3.2 — the prism exists so charging doesn't need to know). For
// maintenance, though, a position map matters: this example ranges each
// discovered capsule from several reader anchor positions on the wall
// surface and trilaterates its location, reporting the anchor-geometry
// quality (dilution of precision) alongside each fix.
package main

import (
	"fmt"
	"log"

	"ecocapsule"
	"ecocapsule/internal/channel"
	"ecocapsule/internal/geometry"
	"ecocapsule/internal/locate"
	"ecocapsule/internal/units"
)

func main() {
	wall := ecocapsule.Wall()
	cast, err := ecocapsule.NewCasting(wall)
	if err != nil {
		log.Fatal(err)
	}
	// Three capsules at "unknown" positions (the pour scattered them).
	truths := []ecocapsule.Vec3{
		ecocapsule.Position(0.9, 9.6, 0.08),
		ecocapsule.Position(1.7, 10.5, 0.12),
		ecocapsule.Position(2.6, 9.9, 0.05),
	}
	for i, pos := range truths {
		capsule := ecocapsule.NewNode(ecocapsule.NodeConfig{
			Handle:   uint16(0x30 + i),
			Position: pos,
			Seed:     int64(i),
		})
		if err := cast.Mix(capsule); err != nil {
			log.Fatal(err)
		}
	}
	cast.Seal()

	// Reader anchor positions on the wall face: spread for geometry.
	anchors := []geometry.Vec3{
		{X: 0.2, Y: 9.0, Z: 0},
		{X: 3.0, Y: 9.2, Z: 0},
		{X: 1.5, Y: 11.5, Z: 0},
		{X: 0.6, Y: 10.8, Z: 0.2},
		{X: 2.4, Y: 10.4, Z: 0.2},
	}
	speed := wall.Material.VS()

	fmt.Println("capsule  true position        estimated position    error   residual  DOP")
	for i, truth := range truths {
		// Range from every anchor: the first S-arrival delay of the
		// channel is the time-of-flight observation a real reader would
		// measure by round-trip timing.
		var ms []locate.Measurement
		for _, a := range anchors {
			ch, err := channel.New(channel.Config{
				Structure:   wall,
				Source:      a,
				Destination: truth,
				PrismAngle:  units.Deg2Rad(60),
			})
			if err != nil {
				log.Fatal(err)
			}
			first := ch.Arrivals()[0]
			ms = append(ms, locate.MeasureFromChannel(a, first.Delay, speed))
		}
		res, err := locate.Solve(ms, wall)
		if err != nil {
			log.Fatalf("capsule %d: %v", i, err)
		}
		dop := locate.DilutionOfPrecision(res.Position, anchors)
		fmt.Printf("%#04x   (%.2f, %.2f, %.2f)   (%.2f, %.2f, %.2f)   %.3f m  %.4f m  %.2f\n",
			0x30+i,
			truth.X, truth.Y, truth.Z,
			res.Position.X, res.Position.Y, res.Position.Z,
			res.Position.Dist(truth), res.RMSResidual, dop)
	}

	fmt.Println("\nanchor-geometry sanity: collinear anchors would blow the DOP up —")
	collinear := []geometry.Vec3{{X: 0, Y: 10, Z: 0}, {X: 1, Y: 10, Z: 0}, {X: 2, Y: 10, Z: 0}}
	fmt.Printf("spread anchors DOP %.2f vs collinear DOP %.2f\n",
		locate.DilutionOfPrecision(truths[0], anchors),
		locate.DilutionOfPrecision(truths[0], collinear))
}
