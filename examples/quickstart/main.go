// Quickstart: cast a self-sensing wall, power up its capsules through the
// continuous body wave, inventory them, and read an in-concrete sensor —
// the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"ecocapsule"
)

func main() {
	// 1. Pick a structure and start the pour.
	wall := ecocapsule.Wall() // S3: 20 m × 20 m × 20 cm common wall
	cast, err := ecocapsule.NewCasting(wall)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Mix capsules into the fresh concrete.
	for _, capsule := range ecocapsule.PlanCapsules(wall, 3, 0x10, 1) {
		if err := cast.Mix(capsule); err != nil {
			log.Fatalf("mixing capsule %#04x: %v", capsule.Handle(), err)
		}
	}

	// 3. Cure and verify (the Fig. 10 CT examination).
	report := cast.Seal()
	fmt.Printf("cured: %d capsule(s), all shells intact: %v, volume fraction %.4f%%\n",
		report.Capsules, report.Intact(), report.VolumeFraction*100)

	// 4. Attach the reader: transmitting PZT behind a 60° PLA prism.
	rd, err := cast.AttachReader(ecocapsule.ReaderConfig{
		TXPosition:   ecocapsule.Position(0.1, 10, 0),
		DriveVoltage: 200, // volts at the PZT (amplifier caps at 250)
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}
	rd.SetEnvironment(func(pos ecocapsule.Vec3) ecocapsule.Environment {
		return ecocapsule.Environment{
			TemperatureC:     27.5,
			RelativeHumidity: 71,
			StrainX:          35e-6,
			StrainY:          22e-6,
		}
	})

	// 5. Charge: the continuous body wave wakes every capsule in range.
	powered := rd.Charge(0.5)
	fmt.Printf("charging: %d capsule(s) powered up\n", powered)

	// 6. Inventory: TDMA singulation discovers the capsules.
	inv := rd.Inventory(16)
	fmt.Printf("inventory: discovered %d capsule(s) in %d round(s)\n",
		len(inv.Discovered), inv.Rounds)

	// 7. Read sensors from the first discovered capsule.
	for _, h := range inv.Discovered {
		temp, err := rd.ReadSensor(h, ecocapsule.TempHumidity)
		if err != nil {
			log.Fatalf("capsule %#04x: %v", h, err)
		}
		strain, err := rd.ReadSensor(h, ecocapsule.Strain)
		if err != nil {
			log.Fatalf("capsule %#04x: %v", h, err)
		}
		fmt.Printf("capsule %#04x: %.1f °C, %.0f %%RH, strain (%.0f, %.0f) µε\n",
			h, temp[0], temp[1], strain[0]*1e6, strain[1]*1e6)
	}
}
