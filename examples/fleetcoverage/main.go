// Fleet coverage: a 20 m load-bearing wall exceeds any single reader's
// power-up range (≈5–6 m at the amplifier ceiling, Fig. 12), so full
// monitoring plans a fleet of reader stations. This example plans the
// station set with the deploy package, builds the fleet, charges and
// inventories every capsule, and reads a sensor through each capsule's
// best-serving station.
package main

import (
	"fmt"
	"log"

	"ecocapsule/internal/deploy"
	"ecocapsule/internal/fleet"
	"ecocapsule/internal/geometry"
	"ecocapsule/internal/node"
	"ecocapsule/internal/sensors"
)

func main() {
	wall := geometry.CommonWall()

	// Eight capsules spread across the full 20 m of the wall.
	var capsules []*node.Node
	var positions []geometry.Vec3
	for i := 0; i < 8; i++ {
		pos := geometry.Vec3{X: 1.0 + 2.5*float64(i), Y: 10, Z: 0.1}
		positions = append(positions, pos)
		capsules = append(capsules, node.New(node.Config{
			Handle:   uint16(0x90 + i),
			Position: pos,
			Seed:     int64(i),
		}))
	}

	// Plan the stations at 200 V.
	plan, err := deploy.Cover(wall, positions, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment plan at %.0f V: %d station(s), feasible=%v\n",
		plan.Voltage, len(plan.Stations), plan.Feasible())
	for i, st := range plan.Stations {
		fmt.Printf("  station %d at x=%.1f m (range %.1f m) covers %d capsule(s)\n",
			i, st.Position.X, st.RangeM, len(st.Covers))
	}

	// What would the cheapest voltage be with at most 4 stations?
	if v, p, err := deploy.MinimumVoltage(wall, positions, 4); err == nil {
		fmt.Printf("minimum voltage for ≤4 stations: %.0f V (%d stations)\n",
			v, len(p.Stations))
	}

	// Build and run the fleet.
	fl, err := fleet.New(wall, plan, capsules, 42)
	if err != nil {
		log.Fatal(err)
	}
	fl.SetEnvironment(func(pos geometry.Vec3) sensors.Environment {
		return sensors.Environment{
			TemperatureC:     24 + 0.2*pos.X,
			RelativeHumidity: 65,
			StrainX:          30e-6,
		}
	})
	up := fl.Charge(0.5)
	fmt.Printf("\nfleet charge: %d/%d capsules powered up\n", up, len(capsules))
	fmt.Printf("per-station load: %v\n", fl.Coverage())

	found := fl.Inventory(16)
	fmt.Printf("fleet inventory discovered %d capsule(s):\n", len(found))
	for _, h := range found {
		vals, err := fl.ReadSensor(h, sensors.TypeTempHumidity)
		if err != nil {
			fmt.Printf("  capsule %#04x: read failed: %v\n", h, err)
			continue
		}
		fmt.Printf("  capsule %#04x via station %d: %.1f °C, %.0f %%RH\n",
			h, fl.BestStation(h), vals[0], vals[1])
	}
}
