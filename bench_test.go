package ecocapsule

// The benchmark harness: one testing.B target per table and figure of the
// paper's evaluation. Each bench regenerates its experiment through the
// internal/expt runner, reports domain-specific metrics via b.ReportMetric,
// and fails the bench if the qualitative shape checks (who wins, where the
// crossovers fall) diverge from the paper. Run them all with
//
//	go test -bench=. -benchmem
//
// and see EXPERIMENTS.md for the paper-vs-measured record.

import (
	"testing"

	"ecocapsule/internal/expt"
)

// runExperiment drives one runner inside the benchmark loop.
func runExperiment(b *testing.B, id string) *expt.Result {
	b.Helper()
	r := expt.ByID(id)
	if r == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var res *expt.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = r.Run()
	}
	b.StopTimer()
	if !res.Passed() {
		b.Fatalf("%s failed its shape checks: %v", id, res.FailedChecks())
	}
	return res
}

func BenchmarkTable1Materials(b *testing.B) {
	res := runExperiment(b, "table1")
	b.ReportMetric(float64(len(res.Rows)), "rows")
}

func BenchmarkFig04ModeAmplitudes(b *testing.B) {
	res := runExperiment(b, "fig04")
	b.ReportMetric(float64(len(res.Rows)), "angles")
}

func BenchmarkFig05FrequencyResponse(b *testing.B) {
	res := runExperiment(b, "fig05")
	b.ReportMetric(float64(len(res.Rows)), "freq_points")
}

func BenchmarkFig07RingEffect(b *testing.B) {
	res := runExperiment(b, "fig07")
	b.ReportMetric(float64(len(res.Series)), "renderings")
}

func BenchmarkFig12RangeVsVoltage(b *testing.B) {
	res := runExperiment(b, "fig12")
	b.ReportMetric(float64(len(res.Series)), "structures")
}

func BenchmarkFig13PowerConsumption(b *testing.B) {
	res := runExperiment(b, "fig13")
	b.ReportMetric(float64(len(res.Rows)), "bitrates")
}

func BenchmarkFig14ColdStart(b *testing.B) {
	res := runExperiment(b, "fig14")
	b.ReportMetric(float64(len(res.Rows)), "voltages")
}

func BenchmarkFig15BERvsSNR(b *testing.B) {
	res := runExperiment(b, "fig15")
	b.ReportMetric(float64(len(res.Rows)), "snr_points")
}

func BenchmarkFig16SNRvsBitrate(b *testing.B) {
	res := runExperiment(b, "fig16")
	b.ReportMetric(float64(len(res.Rows)), "bitrates")
}

func BenchmarkFig17Throughput(b *testing.B) {
	res := runExperiment(b, "fig17")
	b.ReportMetric(float64(len(res.Rows)), "concretes")
}

func BenchmarkFig18SNRvsPosition(b *testing.B) {
	res := runExperiment(b, "fig18")
	b.ReportMetric(float64(len(res.Series)), "positions")
}

func BenchmarkFig19PrismEffect(b *testing.B) {
	res := runExperiment(b, "fig19")
	b.ReportMetric(float64(len(res.Rows)), "angles")
}

func BenchmarkFig20AntiRing(b *testing.B) {
	res := runExperiment(b, "fig20")
	b.ReportMetric(float64(len(res.Rows)), "bitrates")
}

func BenchmarkFig21PilotStudy(b *testing.B) {
	res := runExperiment(b, "fig21")
	b.ReportMetric(float64(len(res.Rows)), "days_and_sections")
}

func BenchmarkFig22BackscatterSignal(b *testing.B) {
	res := runExperiment(b, "fig22")
	b.ReportMetric(float64(len(res.Rows)), "segments")
}

func BenchmarkFig24SelfInterference(b *testing.B) {
	res := runExperiment(b, "fig24")
	b.ReportMetric(float64(len(res.Rows)), "spectral_lines")
}

func BenchmarkTable2HealthLevels(b *testing.B) {
	res := runExperiment(b, "table2")
	b.ReportMetric(float64(len(res.Rows)), "pao_rows")
}

// BenchmarkEndToEndInventory measures the full public-API pipeline: cast,
// cure, charge, inventory — the operation a building operator repeats.
func BenchmarkEndToEndInventory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		wall := Wall()
		cast, err := NewCasting(wall)
		if err != nil {
			b.Fatal(err)
		}
		for _, n := range PlanCapsules(wall, 4, 0x10, int64(i)) {
			if err := cast.Mix(n); err != nil {
				b.Fatal(err)
			}
		}
		cast.Seal()
		r, err := cast.AttachReader(ReaderConfig{
			TXPosition:   Position(0.1, 10, 0),
			DriveVoltage: 200,
			Seed:         int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		r.Charge(0.3)
		res := r.Inventory(16)
		if len(res.Discovered) == 0 {
			b.Fatal("inventory found nothing")
		}
	}
}
