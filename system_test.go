package ecocapsule

// The capstone system test: a full monitoring deployment lifecycle.
// Plan stations for a wall, cast capsules, run the fleet, stream fused
// telemetry over the wire protocol, fit degradation trends on what a
// subscriber received, and check the modal health of the bridge — every
// subsystem touching every other the way a production deployment would.

import (
	"testing"
	"time"

	"ecocapsule/internal/bridge"
	"ecocapsule/internal/deploy"
	"ecocapsule/internal/fleet"
	"ecocapsule/internal/geometry"
	"ecocapsule/internal/node"
	"ecocapsule/internal/sensors"
	"ecocapsule/internal/shm"
	"ecocapsule/internal/shmwire"
)

func TestSystemFullMonitoringLifecycle(t *testing.T) {
	// ---- 1. Plan and build the sensing deployment. --------------------
	wall := geometry.CommonWall()
	var capsules []*node.Node
	var positions []geometry.Vec3
	for i := 0; i < 6; i++ {
		pos := geometry.Vec3{X: 1.5 + 3.2*float64(i), Y: 10, Z: 0.1}
		positions = append(positions, pos)
		capsules = append(capsules, node.New(node.Config{
			Handle:   uint16(0xA0 + i),
			Position: pos,
			Seed:     int64(i),
		}))
	}
	plan, err := deploy.Cover(wall, positions, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible() {
		t.Fatalf("plan infeasible: %+v", plan)
	}
	fl, err := fleet.New(wall, plan, capsules, 7)
	if err != nil {
		t.Fatal(err)
	}

	// ---- 2. Drive the wall's environment from the bridge simulator. ---
	sim := bridge.NewSim(77)
	hour := 0
	fl.SetEnvironment(func(pos geometry.Vec3) sensors.Environment {
		env := sim.CapsuleEnvironment(hour)
		// Spatial gradient: a slow leak near x ≈ 3 m.
		env.RelativeHumidity += 10 / (1 + (pos.X-3)*(pos.X-3))
		return env
	})
	if up := fl.Charge(0.5); up != len(capsules) {
		t.Fatalf("fleet powered %d/%d", up, len(capsules))
	}
	found := fl.Inventory(16)
	if len(found) != len(capsules) {
		t.Fatalf("fleet inventory found %d/%d", len(found), len(capsules))
	}

	// ---- 3. Stream a week of readings over the wire protocol. ---------
	srv, err := shmwire.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetLogf(func(string, ...any) {})
	defer srv.Close()
	cl, err := shmwire.Dial(srv.Addr().String(), "system-test")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && srv.Subscribers() == 0 {
		time.Sleep(2 * time.Millisecond)
	}

	const days = 7
	sent := 0
	for day := 0; day < days; day++ {
		hour = day*24 + 12
		for _, h := range found {
			vals, err := fl.ReadSensor(h, sensors.TypeTempHumidity)
			if err != nil {
				t.Fatalf("day %d capsule %#04x: %v", day, h, err)
			}
			srv.BroadcastTelemetry(shmwire.Telemetry{
				Timestamp:    sim.Start().AddDate(0, 0, day),
				CapsuleID:    h,
				TemperatureC: vals[0],
				Humidity:     vals[1],
			})
			sent++
		}
	}

	// ---- 4. The subscriber reconstructs per-capsule series. -----------
	series := map[uint16][]float64{}
	cl.SetDeadline(time.Now().Add(5 * time.Second))
	for i := 0; i < sent; i++ {
		ev, err := cl.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if ev.Type != shmwire.MsgTelemetry {
			t.Fatalf("unexpected event %v", ev.Type)
		}
		tele := ev.Telemetry
		series[tele.CapsuleID] = append(series[tele.CapsuleID], tele.Humidity)
	}
	if len(series) != len(capsules) {
		t.Fatalf("subscriber saw %d capsules, want %d", len(series), len(capsules))
	}

	// ---- 5. Degradation analytics on the received data. ---------------
	// The leak-adjacent capsule (x=1.5+3.2 ≈ index 0/1) reports higher
	// humidity than the far end.
	nearLeak := series[0xA0]
	farEnd := series[0xA5]
	var nearMean, farMean float64
	for i := range nearLeak {
		nearMean += nearLeak[i]
		farMean += farEnd[i]
	}
	nearMean /= float64(len(nearLeak))
	farMean /= float64(len(farEnd))
	if nearMean <= farMean {
		t.Errorf("leak-adjacent capsule (%.1f %%RH) must exceed the far end (%.1f)", nearMean, farMean)
	}
	// Trend fitting on the received series runs cleanly (a week of flat
	// data: no alarm).
	ts := make([]float64, len(nearLeak))
	for i := range ts {
		ts[i] = float64(i)
	}
	rep, err := shm.Assess("humidity", ts, nearLeak, 120, 365)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Alarming {
		t.Errorf("a flat week must not alarm: %+v", rep)
	}

	// ---- 6. Modal health closes the loop. ------------------------------
	est, err := shm.EstimateNaturalFrequency(sim.VibrationBurst(12, 50, 120), 50, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	idx := shm.ModalDamageIndex(bridge.HealthyFundamentalHz, est.FrequencyHz)
	if shm.ClassifyModalDamage(idx) != shm.DamageNone {
		t.Errorf("healthy structure classified %v (index %g)", shm.ClassifyModalDamage(idx), idx)
	}
}
