// Package ecocapsule is the public API of the self-sensing-concrete SHM
// stack, a reproduction of "Empowering Smart Buildings with Self-Sensing
// Concrete for Structural Health Monitoring" (SIGCOMM 2022).
//
// The typical workflow mirrors the paper's deployment story:
//
//	wall := ecocapsule.Wall()                       // pick a structure
//	cast, _ := ecocapsule.NewCasting(wall)          // start the pour
//	for _, n := range ecocapsule.PlanCapsules(wall, 5, 0x10, 1) {
//		cast.Mix(n)                                 // mix capsules in
//	}
//	report := cast.Seal()                           // cure + CT check
//	r, _ := cast.AttachReader(ecocapsule.ReaderConfig{
//		TXPosition:   ecocapsule.Position(0.1, 10, 0),
//		DriveVoltage: 200,
//	})
//	r.Charge(0.5)                                   // continuous body wave
//	found := r.Inventory(16)                        // TDMA singulation
//	temp, _ := r.ReadSensor(found.Discovered[0], ecocapsule.TempHumidity)
//
// The facade re-exports the subsystem types a downstream user needs; the
// internal packages carry the full physics, DSP, protocol, and simulation
// stack described in DESIGN.md.
package ecocapsule

import (
	"ecocapsule/internal/core"
	"ecocapsule/internal/geometry"
	"ecocapsule/internal/node"
	"ecocapsule/internal/reader"
	"ecocapsule/internal/sensors"
	"ecocapsule/internal/shm"
)

// Re-exported types. Each alias carries the documentation of its origin.
type (
	// Structure is a concrete body (or baseline pool) hosting capsules.
	Structure = geometry.Structure
	// Vec3 is a position in metres within a structure's local frame.
	Vec3 = geometry.Vec3
	// Casting is an in-progress self-sensing concrete pour.
	Casting = core.Casting
	// CTReport is the post-cure intactness examination result.
	CTReport = core.CTReport
	// Node is one EcoCapsule.
	Node = node.Node
	// NodeConfig parameterises a capsule.
	NodeConfig = node.Config
	// Reader drives a structure of embedded capsules.
	Reader = reader.Reader
	// ReaderConfig parameterises a reader deployment.
	ReaderConfig = reader.Config
	// InventoryResult summarises a TDMA inventory.
	InventoryResult = reader.InventoryResult
	// Environment is the physical ground truth sensors sample.
	Environment = sensors.Environment
	// SensorType selects a capsule payload.
	SensorType = sensors.SensorType
	// HealthLevel grades structural health A–F.
	HealthLevel = shm.HealthLevel
	// Region selects a Table 2 level-of-service standard.
	Region = shm.Region
)

// Sensor type selectors.
const (
	// TempHumidity selects the AHT10-style combined sensor.
	TempHumidity = sensors.TypeTempHumidity
	// Strain selects the full-bridge strain gauge.
	Strain = sensors.TypeStrain
	// Accelerometer selects the acceleration + stress payload.
	Accelerometer = sensors.TypeAccelerometer
)

// Structure constructors (the §5.1 evaluation set).
var (
	// Slab returns S1, the 150×50×15 cm slab.
	Slab = geometry.Slab
	// Column returns S2, the 250 cm load-bearing column.
	Column = geometry.Column
	// Wall returns S3, the 2000×2000×20 cm common wall.
	Wall = geometry.CommonWall
	// ProtectiveWall returns S4, the 50 cm-thick wall.
	ProtectiveWall = geometry.ProtectiveWall
)

// NewCasting starts a self-sensing concrete pour into a structure.
func NewCasting(s *Structure) (*Casting, error) { return core.NewCasting(s) }

// NewNode builds one EcoCapsule.
func NewNode(cfg NodeConfig) *Node { return node.New(cfg) }

// PlanCapsules lays out count capsules along the structure's long axis.
func PlanCapsules(s *Structure, count int, firstHandle uint16, seed int64) []*Node {
	return core.PlanGrid(s, count, firstHandle, seed)
}

// Position builds a Vec3.
func Position(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// MaxPowerUpRange sweeps a probe along the structure and returns the
// farthest power-up distance at the given drive voltage (the Fig. 12
// measurement).
func MaxPowerUpRange(cfg ReaderConfig, voltage float64) (float64, error) {
	return reader.MaxPowerUpRange(cfg, voltage)
}

// GradeHealth grades structural health from pedestrian area occupancy
// (m² per pedestrian) under a regional standard (Table 2).
func GradeHealth(region Region, pao float64) (HealthLevel, error) {
	return shm.GradePAO(region, pao)
}

// Regions of Table 2.
const (
	UnitedStates = shm.UnitedStates
	HongKong     = shm.HongKong
	Bangkok      = shm.Bangkok
	Manila       = shm.Manila
)
